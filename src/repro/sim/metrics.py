"""Metric recorders for the mixed-workload simulator.

Records exactly the quantities the paper's figures plot:

* per-cycle time series: average hypothetical relative performance of the
  batch workload, actual relative performance of each transactional
  application, CPU allocated per workload, queue lengths, cumulative
  placement changes (Figures 2, 4, 6, 7);
* per-job completion records: completion time, distance to the deadline,
  goal factor, minimum execution time — everything Figures 3 and 5 bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.batch.job import Job
from repro.batch.rpf import job_relative_performance
from repro.obs.registry import MetricRegistry


@dataclass
class ActionFaultStats:
    """Per-action-type accounting of the fallible-actuator extension.

    Every counter is keyed by the action type's string value (``boot``,
    ``suspend``, ``resume``, ``migrate``).  An *attempt* is one issuance
    against the actuator; a *failure* is an attempt that errored
    (immediately or via stall timeout); a *retry* is a re-issuance
    scheduled by the reconciliation loop; *abandoned* counts actions
    given up after exhausting retries; *superseded* counts in-flight
    actions cancelled because a new control cycle re-planned from the
    actual placement.

    When bound to a :class:`~repro.obs.registry.MetricRegistry` (via
    :meth:`bind_registry`), every recording also publishes the labeled
    series ``repro_actions_total{action, outcome}``, plus histograms for
    retry backoff delays and time-to-reconcile.  The dict attributes
    remain the canonical in-process view — this dataclass is the adapter
    between the reconciler and both consumers.
    """

    attempts: Dict[str, int] = field(default_factory=dict)
    successes: Dict[str, int] = field(default_factory=dict)
    failures: Dict[str, int] = field(default_factory=dict)
    stalls: Dict[str, int] = field(default_factory=dict)
    retries: Dict[str, int] = field(default_factory=dict)
    abandoned: Dict[str, int] = field(default_factory=dict)
    superseded: Dict[str, int] = field(default_factory=dict)
    #: Seconds from first attempt to eventual success, for every action
    #: that needed more than one attempt (desired/actual convergence lag).
    reconcile_times: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._actions_total = None
        self._backoff_hist = None
        self._reconcile_hist = None

    def bind_registry(self, registry: MetricRegistry) -> None:
        """Publish every subsequent recording into ``registry`` too."""
        self._actions_total = registry.counter(
            "repro_actions_total",
            "Placement-action outcomes by action type",
            ("action", "outcome"),
        )
        self._backoff_hist = registry.histogram(
            "repro_action_retry_backoff_seconds",
            "Backoff delay before each scheduled retry",
            ("action",),
            buckets=(1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0),
        )
        self._reconcile_hist = registry.histogram(
            "repro_action_reconcile_seconds",
            "Seconds from first attempt to eventual success "
            "(multi-attempt actions only)",
            ("action",),
            buckets=(10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0),
        )

    # ------------------------------------------------------------------
    # Recording (driven by the simulator's reconciler)
    # ------------------------------------------------------------------
    def _bump(self, counter: Dict[str, int], action: str, outcome: str) -> None:
        counter[action] = counter.get(action, 0) + 1
        if self._actions_total is not None:
            self._actions_total.inc(action=action, outcome=outcome)

    def record_attempt(self, action: str) -> None:
        self._bump(self.attempts, action, "attempt")

    def record_success(self, action: str, time_to_reconcile: float = 0.0) -> None:
        self._bump(self.successes, action, "success")
        if time_to_reconcile > 0.0:
            self.reconcile_times.append(time_to_reconcile)
            if self._reconcile_hist is not None:
                self._reconcile_hist.observe(time_to_reconcile, action=action)

    def record_failure(self, action: str) -> None:
        self._bump(self.failures, action, "failure")

    def record_stall(self, action: str) -> None:
        self._bump(self.stalls, action, "stall")

    def record_retry(self, action: str, backoff: float = 0.0) -> None:
        self._bump(self.retries, action, "retry")
        if self._backoff_hist is not None and backoff > 0.0:
            self._backoff_hist.observe(backoff, action=action)

    def record_abandon(self, action: str) -> None:
        self._bump(self.abandoned, action, "abandoned")

    def record_superseded(self, action: str) -> None:
        self._bump(self.superseded, action, "superseded")

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total(self, counter: Dict[str, int]) -> int:
        return sum(counter.values())

    @property
    def total_attempts(self) -> int:
        return self.total(self.attempts)

    @property
    def total_failures(self) -> int:
        return self.total(self.failures)

    @property
    def total_abandoned(self) -> int:
        return self.total(self.abandoned)

    def failure_rate(self, action: Optional[str] = None) -> float:
        """Failures / attempts, overall or for one action type."""
        if action is None:
            attempts, failures = self.total_attempts, self.total_failures
        else:
            attempts = self.attempts.get(action, 0)
            failures = self.failures.get(action, 0)
        if attempts == 0:
            return float("nan")
        return failures / attempts

    def mean_time_to_reconcile(self) -> float:
        """Mean seconds from first attempt to success (multi-attempt only)."""
        if not self.reconcile_times:
            return float("nan")
        return sum(self.reconcile_times) / len(self.reconcile_times)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Plain-dict snapshot (JSON export, reports)."""
        return {
            "attempts": dict(self.attempts),
            "successes": dict(self.successes),
            "failures": dict(self.failures),
            "stalls": dict(self.stalls),
            "retries": dict(self.retries),
            "abandoned": dict(self.abandoned),
            "superseded": dict(self.superseded),
        }

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Full serializable state: :meth:`as_dict` plus reconcile times."""
        out: Dict[str, object] = self.as_dict()
        out["reconcile_times"] = list(self.reconcile_times)
        return out

    def restore_state(self, data: Dict[str, object]) -> None:
        """Overwrite the counters in place from :meth:`state_dict` output.

        In place because the reconciler holds this object by reference;
        registry bindings are untouched (recording after restore keeps
        publishing, but the registry's own series are not rewound).
        """
        self.attempts = {k: int(v) for k, v in data["attempts"].items()}
        self.successes = {k: int(v) for k, v in data["successes"].items()}
        self.failures = {k: int(v) for k, v in data["failures"].items()}
        self.stalls = {k: int(v) for k, v in data["stalls"].items()}
        self.retries = {k: int(v) for k, v in data["retries"].items()}
        self.abandoned = {k: int(v) for k, v in data["abandoned"].items()}
        self.superseded = {k: int(v) for k, v in data["superseded"].items()}
        self.reconcile_times = [float(t) for t in data["reconcile_times"]]


@dataclass
class CycleSample:
    """System state captured at the start of one control cycle."""

    time: float
    #: Average hypothetical relative performance over incomplete jobs
    #: (NaN when no jobs are in the system).
    batch_hypothetical_utility: float
    #: Total CPU allocated to batch jobs (MHz).
    batch_allocation_mhz: float
    #: Actual (modeled) relative performance per transactional app.
    txn_utilities: Dict[str, float] = field(default_factory=dict)
    #: Total CPU allocated per transactional app (MHz).
    txn_allocations_mhz: Dict[str, float] = field(default_factory=dict)
    running_jobs: int = 0
    queued_jobs: int = 0
    #: Placement changes (suspend/resume/migrate) performed *this* cycle.
    placement_changes: int = 0
    #: Wall-clock seconds the policy spent deciding this cycle.
    decision_seconds: float = 0.0
    #: Instances that moved between the previous cycle's placement and
    #: this one (removals + additions in the matrix diff) — the churn
    #: the controller's tie-breaking is meant to minimize (§3.2).
    churn_instances: int = 0
    #: Memory footprint relocated by migrations this cycle (MB): the
    #: paper's dominant migration cost is state transfer, so distance is
    #: measured in megabytes moved, not hops.
    migration_distance_mb: float = 0.0

    @property
    def txn_allocation_mhz(self) -> float:
        """Aggregate transactional allocation (Figure 7 plots one line)."""
        return sum(self.txn_allocations_mhz.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "batch_hypothetical_utility": self.batch_hypothetical_utility,
            "batch_allocation_mhz": self.batch_allocation_mhz,
            "txn_utilities": dict(self.txn_utilities),
            "txn_allocations_mhz": dict(self.txn_allocations_mhz),
            "running_jobs": self.running_jobs,
            "queued_jobs": self.queued_jobs,
            "placement_changes": self.placement_changes,
            "decision_seconds": self.decision_seconds,
            "churn_instances": self.churn_instances,
            "migration_distance_mb": self.migration_distance_mb,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CycleSample":
        return cls(**data)


@dataclass(frozen=True)
class JobCompletionRecord:
    """Everything the evaluation needs about one finished job."""

    job_id: str
    submit_time: float
    completion_time: float
    completion_goal: float
    relative_goal: float
    goal_factor: float
    best_execution_time: float
    relative_performance: float
    deadline_distance: float
    suspend_count: int
    resume_count: int
    migration_count: int

    @property
    def met_deadline(self) -> bool:
        return self.deadline_distance >= 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "submit_time": self.submit_time,
            "completion_time": self.completion_time,
            "completion_goal": self.completion_goal,
            "relative_goal": self.relative_goal,
            "goal_factor": self.goal_factor,
            "best_execution_time": self.best_execution_time,
            "relative_performance": self.relative_performance,
            "deadline_distance": self.deadline_distance,
            "suspend_count": self.suspend_count,
            "resume_count": self.resume_count,
            "migration_count": self.migration_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobCompletionRecord":
        return cls(**data)

    @classmethod
    def from_job(cls, job: Job) -> "JobCompletionRecord":
        if job.completion_time is None:
            raise ValueError(f"job {job.job_id} has not completed")
        return cls(
            job_id=job.job_id,
            submit_time=job.submit_time,
            completion_time=job.completion_time,
            completion_goal=job.completion_goal,
            relative_goal=job.relative_goal,
            goal_factor=job.goal_factor,
            best_execution_time=job.profile.best_execution_time,
            relative_performance=job_relative_performance(job, job.completion_time),
            deadline_distance=job.deadline_distance(),
            suspend_count=job.suspend_count,
            resume_count=job.resume_count,
            migration_count=job.migration_count,
        )


class MetricsRecorder:
    """Accumulates cycle samples and job completion records.

    With a :class:`~repro.obs.registry.MetricRegistry` attached, each
    recording also publishes labeled series (cycle gauges, decision-time
    and relative-performance histograms, completion counters) and binds
    the fault accounting, so one registry carries the whole run's
    telemetry.  Without one (the default) behavior is unchanged.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.cycles: List[CycleSample] = []
        self.completions: List[JobCompletionRecord] = []
        #: Fallible-actuator accounting (all zeros when fault injection
        #: is off — the default).
        self.faults = ActionFaultStats()
        #: job_id -> wait-time decomposition from the causal tracer's
        #: critical path (empty unless a JobTracer is attached).
        self.wait_profiles: Dict[str, Dict[str, object]] = {}
        #: Registered lazily on the first wait profile, so runs without
        #: a tracer leave the registry's series set untouched.
        self._h_wait = None
        self.registry = registry
        if registry is not None:
            self.faults.bind_registry(registry)
            self._g_time = registry.gauge(
                "repro_sim_time_seconds", "Simulation clock at the last cycle"
            )
            self._g_running = registry.gauge(
                "repro_jobs_running", "Batch jobs executing this cycle"
            )
            self._g_queued = registry.gauge(
                "repro_jobs_queued", "Incomplete batch jobs not executing"
            )
            self._g_batch_alloc = registry.gauge(
                "repro_batch_allocation_mhz", "Total CPU allocated to batch jobs"
            )
            self._g_batch_hypo = registry.gauge(
                "repro_batch_hypothetical_relative_performance",
                "Average hypothetical relative performance over incomplete jobs",
            )
            self._g_txn_alloc = registry.gauge(
                "repro_txn_allocation_mhz",
                "CPU allocated per transactional application",
                ("app",),
            )
            self._g_txn_perf = registry.gauge(
                "repro_txn_relative_performance",
                "Modeled relative performance per transactional application",
                ("app",),
            )
            self._c_changes = registry.counter(
                "repro_placement_changes_total",
                "Suspend/resume/migrate actions performed",
            )
            self._h_decision = registry.histogram(
                "repro_decision_seconds",
                "Per-cycle policy decision time",
                buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0),
            )
            self._c_completions = registry.counter(
                "repro_job_completions_total",
                "Completed jobs by deadline outcome",
                ("met_deadline",),
            )
            self._h_job_perf = registry.histogram(
                "repro_job_relative_performance",
                "Relative performance at completion time",
                buckets=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            )
            self._g_attainment = registry.gauge(
                "repro_sla_attainment",
                "Relative performance vs. goal this cycle (>= 0 meets the "
                "SLA); app='batch' is the hypothetical batch average",
                ("app",),
            )
            self._c_breaches = registry.counter(
                "repro_sla_breaches_total",
                "SLA breaches: below-goal cycles per transactional app, "
                "missed deadlines for app='batch'",
                ("app",),
            )
            self._c_churn = registry.counter(
                "repro_placement_churn_instances_total",
                "Instances moved between consecutive cycle placements",
            )
            self._c_migration_mb = registry.counter(
                "repro_migration_distance_mb_total",
                "Memory footprint relocated by migrations (MB)",
            )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_cycle(self, sample: CycleSample) -> None:
        self.cycles.append(sample)
        if self.registry is None:
            return
        self._g_time.set(sample.time)
        self._g_running.set(sample.running_jobs)
        self._g_queued.set(sample.queued_jobs)
        self._g_batch_alloc.set(sample.batch_allocation_mhz)
        if sample.batch_hypothetical_utility == sample.batch_hypothetical_utility:
            self._g_batch_hypo.set(sample.batch_hypothetical_utility)
            self._g_attainment.set(sample.batch_hypothetical_utility, app="batch")
        for app_id, mhz in sample.txn_allocations_mhz.items():
            self._g_txn_alloc.set(mhz, app=app_id)
        for app_id, utility in sample.txn_utilities.items():
            self._g_txn_perf.set(utility, app=app_id)
            self._g_attainment.set(utility, app=app_id)
            if utility < 0.0:
                self._c_breaches.inc(app=app_id)
        if sample.placement_changes:
            self._c_changes.inc(sample.placement_changes)
        if sample.churn_instances:
            self._c_churn.inc(sample.churn_instances)
        if sample.migration_distance_mb:
            self._c_migration_mb.inc(sample.migration_distance_mb)
        self._h_decision.observe(sample.decision_seconds)

    def record_completion(self, job: Job) -> None:
        record = JobCompletionRecord.from_job(job)
        self.completions.append(record)
        if self.registry is not None:
            self._c_completions.inc(met_deadline=str(record.met_deadline).lower())
            self._h_job_perf.observe(record.relative_performance)
            if not record.met_deadline:
                # Batch SLA breaches are missed deadlines, counted once
                # at completion (the per-cycle hypothetical is a
                # prediction, not an outcome).  With a tracer attached
                # the job carries its trace ID, linking the breach back
                # to the offending job's causal trace.
                self._c_breaches.inc(app="batch", exemplar=job.trace_id)

    def record_wait_profile(self, path: Dict[str, object]) -> None:
        """Store a completed job's wait-time decomposition.

        ``path`` is the dict :func:`repro.obs.tracing.critical_path`
        returns.  With a registry attached, each non-zero segment is
        also observed into ``repro_job_wait_seconds{segment}`` with the
        job's trace ID as exemplar; the histogram is registered lazily
        so non-traced runs' registry output is byte-identical.
        """
        segments = {k: float(v) for k, v in dict(path["segments"]).items()}
        self.wait_profiles[str(path["subject"])] = {
            "trace": str(path["trace"]),
            "total": float(path["total"]),
            "segments": segments,
        }
        if self.registry is None:
            return
        if self._h_wait is None:
            self._h_wait = self.registry.histogram(
                "repro_job_wait_seconds",
                "Per-segment wait-time decomposition of completed jobs "
                "(causal-trace critical path)",
                ("segment",),
                buckets=(
                    10.0, 60.0, 300.0, 1800.0, 3600.0, 7200.0,
                    21_600.0, 86_400.0,
                ),
            )
        for segment, seconds in segments.items():
            if seconds > 0.0:
                self._h_wait.observe(
                    seconds, exemplar=str(path["trace"]), segment=segment
                )

    def wait_decomposition(self) -> Dict[str, float]:
        """Total seconds per wait segment over all recorded profiles."""
        out: Dict[str, float] = {}
        for profile in self.wait_profiles.values():
            for segment, seconds in profile["segments"].items():
                out[segment] = out.get(segment, 0.0) + seconds
        return out

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything recorded so far, as plain JSON data.

        ``wait_profiles`` is written only when non-empty, so snapshots
        of non-traced runs are byte-identical to pre-tracer ones.
        """
        out: Dict[str, object] = {
            "cycles": [s.to_dict() for s in self.cycles],
            "completions": [c.to_dict() for c in self.completions],
            "faults": self.faults.state_dict(),
        }
        if self.wait_profiles:
            out["wait_profiles"] = {
                job_id: {
                    "trace": profile["trace"],
                    "total": profile["total"],
                    "segments": dict(profile["segments"]),
                }
                for job_id, profile in self.wait_profiles.items()
            }
        return out

    def restore_state(self, data: Dict[str, object]) -> None:
        """Rebuild the recorded history from :meth:`state_dict` output.

        ``faults`` is restored *in place* — the reconciler holds that
        object by reference.  An attached registry is not replayed: its
        series carry only what is recorded after the restore (sweep
        resume works at whole-spec granularity, so merged registry
        metrics are never assembled from a half-restored run).
        """
        self.cycles = [CycleSample.from_dict(s) for s in data["cycles"]]
        self.completions = [
            JobCompletionRecord.from_dict(c) for c in data["completions"]
        ]
        self.faults.restore_state(data["faults"])
        # ``.get``: snapshots from non-traced (or pre-tracer) runs
        # simply lack the key.
        self.wait_profiles = {
            str(job_id): {
                "trace": str(profile["trace"]),
                "total": float(profile["total"]),
                "segments": {
                    k: float(v) for k, v in profile["segments"].items()
                },
            }
            for job_id, profile in data.get("wait_profiles", {}).items()
        }

    # ------------------------------------------------------------------
    # Figure 3: deadline satisfaction
    # ------------------------------------------------------------------
    def deadline_satisfaction_rate(self) -> float:
        """Fraction of completed jobs that met their goal."""
        if not self.completions:
            return float("nan")
        met = sum(1 for c in self.completions if c.met_deadline)
        return met / len(self.completions)

    # ------------------------------------------------------------------
    # Figure 4: placement changes
    # ------------------------------------------------------------------
    def total_placement_changes(self) -> int:
        """Suspends + resumes + migrations over all completed jobs plus
        per-cycle recorded changes for jobs still in flight."""
        return sum(s.placement_changes for s in self.cycles)

    # ------------------------------------------------------------------
    # Figure 5: distance-to-deadline distributions
    # ------------------------------------------------------------------
    def distances_by_goal_factor(self) -> Dict[float, List[float]]:
        """Deadline distances grouped by (rounded) goal factor."""
        groups: Dict[float, List[float]] = {}
        for c in self.completions:
            key = round(c.goal_factor, 2)
            groups.setdefault(key, []).append(c.deadline_distance)
        return groups

    def distance_summary(self) -> Dict[float, Dict[str, float]]:
        """Min / mean / max / spread of deadline distance per goal factor."""
        out: Dict[float, Dict[str, float]] = {}
        for factor, distances in sorted(self.distances_by_goal_factor().items()):
            n = len(distances)
            mean = sum(distances) / n
            out[factor] = {
                "count": float(n),
                "min": min(distances),
                "mean": mean,
                "max": max(distances),
                "spread": max(distances) - min(distances),
            }
        return out

    # ------------------------------------------------------------------
    # Figures 2, 6, 7: time series
    # ------------------------------------------------------------------
    def hypothetical_utility_series(self) -> List[tuple]:
        """(time, average hypothetical relative performance) samples."""
        return [(s.time, s.batch_hypothetical_utility) for s in self.cycles]

    def completion_utility_series(self) -> List[tuple]:
        """(completion time, relative performance at completion) points."""
        return [
            (c.completion_time, c.relative_performance) for c in self.completions
        ]

    def allocation_series(self) -> List[tuple]:
        """(time, txn allocation MHz, batch allocation MHz) samples."""
        return [
            (s.time, s.txn_allocation_mhz, s.batch_allocation_mhz)
            for s in self.cycles
        ]

    def txn_utility_series(self, app_id: Optional[str] = None) -> List[tuple]:
        """(time, transactional relative performance) samples.

        With ``app_id`` None the first (or only) application's series is
        returned — Experiment Three uses a single transactional app.
        """
        series = []
        for s in self.cycles:
            if not s.txn_utilities:
                continue
            if app_id is None:
                series.append((s.time, next(iter(s.txn_utilities.values()))))
            elif app_id in s.txn_utilities:
                series.append((s.time, s.txn_utilities[app_id]))
        return series

    def mean_decision_seconds(self) -> float:
        """Average per-cycle policy decision time (§5.1 reports ~1.5 s)."""
        if not self.cycles:
            return float("nan")
        return sum(s.decision_seconds for s in self.cycles) / len(self.cycles)

    # ------------------------------------------------------------------
    # SLA attainment and churn accounting
    # ------------------------------------------------------------------
    def sla_attainment(self) -> Dict[str, float]:
        """SLA attainment per application.

        Transactional apps: the fraction of recorded cycles with
        relative performance >= 0 (meeting the goal).  ``"batch"``: the
        deadline satisfaction rate over completed jobs.  Apps with no
        observations are omitted; ``"batch"`` is NaN with no
        completions.
        """
        met: Dict[str, int] = {}
        seen: Dict[str, int] = {}
        for sample in self.cycles:
            for app_id, utility in sample.txn_utilities.items():
                seen[app_id] = seen.get(app_id, 0) + 1
                if utility >= 0.0:
                    met[app_id] = met.get(app_id, 0) + 1
        out = {app: met.get(app, 0) / count for app, count in seen.items()}
        out["batch"] = self.deadline_satisfaction_rate()
        return out

    def sla_breaches(self) -> Dict[str, int]:
        """Below-goal cycle counts per transactional app, plus
        ``"batch"`` = completed jobs that missed their deadline."""
        out: Dict[str, int] = {}
        for sample in self.cycles:
            for app_id, utility in sample.txn_utilities.items():
                if utility < 0.0:
                    out[app_id] = out.get(app_id, 0) + 1
        out["batch"] = sum(1 for c in self.completions if not c.met_deadline)
        return out

    def total_churn_instances(self) -> int:
        """Instances moved between consecutive cycle placements."""
        return sum(s.churn_instances for s in self.cycles)

    def total_migration_distance_mb(self) -> float:
        """Memory footprint relocated by migrations (MB), whole run."""
        return sum(s.migration_distance_mb for s in self.cycles)


def sla_summary(metrics: "MetricsRecorder") -> Dict[str, object]:
    """One JSON-friendly SLA/churn digest of a recorded run."""
    return {
        "attainment": metrics.sla_attainment(),
        "breaches": metrics.sla_breaches(),
        "churn_instances": metrics.total_churn_instances(),
        "migration_distance_mb": metrics.total_migration_distance_mb(),
    }
