"""Structured simulation event trace.

Debugging a placement controller means answering "what did the system do
at t = 31,800 and why" — a metrics series is too coarse for that.  The
trace records typed events (arrivals, placement actions, completions,
cycle summaries) with bounded memory, and renders filtered views.

Attach a :class:`SimulationTrace` to the simulator via
:meth:`MixedWorkloadSimulator` composition (the simulator emits events if
a trace is configured) or use it standalone from custom policies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro._compat import warn_once


class TraceEventKind(enum.Enum):
    ARRIVAL = "arrival"
    BOOT = "boot"
    SUSPEND = "suspend"
    RESUME = "resume"
    MIGRATE = "migrate"
    COMPLETION = "completion"
    CYCLE = "cycle"
    #: One-line per-cycle summary from the decision flight recorder
    #: (:class:`repro.obs.audit.DecisionAudit`): did the controller
    #: change the placement, how many candidates it evaluated, and the
    #: worst relative performance before/after.
    DECISION = "decision"
    #: Fallible-actuator events (fault-injection extension): an action
    #: attempt failed, a retry was scheduled, a stalled action is holding
    #: resources, or the reconciler gave up on the action entirely.
    ACTION_FAILED = "action_failed"
    ACTION_RETRIED = "action_retried"
    ACTION_STALLED = "action_stalled"
    ACTION_ABANDONED = "action_abandoned"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped simulation event."""

    time: float
    kind: TraceEventKind
    subject: str
    detail: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:>12.1f}s] {self.kind.value:<10} {self.subject:<24} {detail}".rstrip()


class SimulationTrace:
    """Bounded in-memory event log with filtered rendering.

    The deque bound means long runs evict their oldest events; the
    ``dropped_events`` counter makes that loss visible, and an attached
    :class:`~repro.obs.sink.JsonlSink` streams every event to disk at
    emit time — before the bound applies — so full history survives
    regardless of capacity.
    """

    def __init__(self, capacity: int = 100_000, sink=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._dropped = 0
        #: Optional streaming sink (``repro.obs.sink.JsonlSink``).
        self.sink = sink

    def emit(
        self,
        time: float,
        kind: TraceEventKind,
        subject: str,
        **detail: object,
    ) -> None:
        if self.sink is not None:
            self.sink.event(time, kind.value, subject, dict(detail))
        if len(self._events) == self._events.maxlen:
            self._dropped += 1
        self._events.append(TraceEvent(time, kind, subject, dict(detail)))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def dropped_events(self) -> int:
        """Events evicted by the capacity bound (oldest-first).

        Non-zero means the in-memory view is incomplete; attach a sink
        to keep full history on disk.
        """
        return self._dropped

    @property
    def dropped(self) -> int:
        """Deprecated alias of :attr:`dropped_events` (original name)."""
        warn_once(
            "SimulationTrace.dropped",
            "SimulationTrace.dropped is deprecated; use dropped_events",
        )
        return self._dropped

    def __len__(self) -> int:
        return len(self._events)

    def events(
        self,
        kinds: Optional[Iterable[TraceEventKind]] = None,
        subject: Optional[str] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events filtered by kind set, subject, time window, predicate."""
        kind_set = set(kinds) if kinds is not None else None
        out: List[TraceEvent] = []
        for event in self._events:
            if kind_set is not None and event.kind not in kind_set:
                continue
            if subject is not None and event.subject != subject:
                continue
            if not start <= event.time <= end:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def history_of(self, subject: str) -> List[TraceEvent]:
        """Everything that ever happened to one application/job."""
        return self.events(subject=subject)

    def counts(self) -> Dict[TraceEventKind, int]:
        out: Dict[TraceEventKind, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def summary(self) -> Dict[str, int]:
        """Per-kind counts of retained events plus the drop counter."""
        out = {kind.value: count for kind, count in self.counts().items()}
        out["retained_events"] = len(self._events)
        out["dropped_events"] = self._dropped
        return out

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Retained events, drop counter, and capacity as JSON data.

        Only the in-memory window is captured; events already evicted by
        the capacity bound live (at most) in the streaming sink, which is
        an append-only file and needs no restoring.
        """
        return {
            "capacity": self._events.maxlen,
            "dropped": self._dropped,
            "events": [
                {
                    "time": e.time,
                    "kind": e.kind.value,
                    "subject": e.subject,
                    "detail": dict(e.detail),
                }
                for e in self._events
            ],
        }

    def restore_state(self, data: Dict[str, object]) -> None:
        """Overwrite this trace in place from :meth:`state_dict` output.

        In place because the simulator, audit, and CLI hold the trace by
        reference.  The sink is left untouched: restored events were
        already streamed when first emitted, so replaying them would
        duplicate lines in the JSONL file.
        """
        self._events = deque(
            (
                TraceEvent(
                    time=e["time"],
                    kind=TraceEventKind(e["kind"]),
                    subject=e["subject"],
                    detail=dict(e["detail"]),
                )
                for e in data["events"]
            ),
            maxlen=int(data["capacity"]),
        )
        self._dropped = int(data["dropped"])

    def render(self, **filters) -> str:
        """A text log of the (filtered) events."""
        lines = [event.render() for event in self.events(**filters)]
        if self._dropped:
            note = f"... ({self._dropped} older events dropped"
            if self.sink is not None:
                note += "; full history streamed to sink"
            lines.append(note + ")")
        return "\n".join(lines)
