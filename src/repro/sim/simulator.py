"""The mixed-workload cluster simulator.

Drives a :class:`~repro.sim.policies.PlacementPolicy` over a virtualized
cluster on a fixed control cycle ``T`` (§3.1), exactly as the paper's
evaluation does:

* **arrivals**: jobs are submitted at their scheduled times and wait in
  the queue until the next control cycle considers them;
* **control cycles**: at every multiple of ``T`` the policy computes a
  new placement; the diff against the running placement is translated
  into VM control actions (boot / suspend / resume / migrate), whose
  costs — the paper's measured linear-in-footprint model — delay the
  affected job's execution within the cycle;
* **execution**: between control points allocations are constant; placed
  jobs progress at their allocated speed; completions are scheduled as
  exact-time events (capacity freed mid-cycle stays idle until the next
  control point, matching the control-cycle granularity of the real
  system);
* **metrics**: every cycle records the series the paper plots (average
  hypothetical relative performance, transactional relative performance,
  per-workload allocations, placement changes), and every completion
  records the job-level outcome (deadline distance, relative performance
  at completion time).
"""

from __future__ import annotations

import dataclasses
import time as _wallclock
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro._compat import keyword_only

from repro.batch.job import Job, JobStatus
from repro.batch.model import BatchWorkloadModel
from repro.batch.queue import JobQueue
from repro.cluster import Cluster
from repro.core.placement import PlacementState
from repro.errors import (
    ActionFailedError,
    CapacityError,
    CheckpointError,
    ConfigurationError,
    PlacementError,
    SimulationError,
)
from repro.sim.engine import (
    EventQueue,
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_CYCLE,
    ScheduledEvent,
)
from repro.obs.alerts import AlertConfig, AlertEngine, CycleObservation
from repro.obs.registry import MetricRegistry
from repro.obs.spans import NULL_SPAN, SpanProfiler
from repro.sim.metrics import CycleSample, MetricsRecorder
from repro.policies import PlacementPolicy
from repro.sim.reconcile import Decision, Directive, PendingAction, Reconciler
from repro.sim.snapshot import SNAPSHOT_SCHEMA_VERSION, check_version, require
from repro.sim.trace import SimulationTrace, TraceEventKind
from repro.txn.application import TransactionalApp
from repro.units import EPSILON
from repro.virt.actions import ActionType, CHANGE_ACTIONS, diff_placements
from repro.virt.costs import PAPER_COST_MODEL, VirtualizationCostModel
from repro.virt.faults import ActionFaultModel, RetryPolicy


@keyword_only
@dataclass
class SimulationConfig:
    """Simulator parameters.  Construct with keyword arguments
    (positional construction is deprecated).

    Attributes
    ----------
    cycle_length:
        Control cycle period ``T`` (s).
    max_time:
        Hard stop; ``None`` runs until the batch workload drains.
    cost_model:
        VM action cost model (the paper's measured model by default;
        Experiment Two uses :data:`~repro.virt.costs.FREE_COST_MODEL`).
    prune_completed:
        Drop completed jobs from the queue each cycle to keep the
        controller's working set small (metrics keep their own records).
    failures:
        Injected node outages (failure-injection extension).
    fault_model:
        Per-action fault injection
        (:class:`~repro.virt.faults.ActionFaultModel`).  ``None`` (the
        default) keeps the classic infallible actuator: no RNG is ever
        consulted and results are bit-identical to a build without the
        extension.
    retry_policy:
        Backoff schedule for re-issuing failed actions (only consulted
        when a fault model is active).
    action_timeout:
        Patience for stalled actions (s): a stall exceeding this is
        detected as a failure when the timeout event fires.
    decision_clock:
        Clock used to time the policy's per-cycle decision
        (``decision_seconds``).  ``None`` (the default) uses the
        wall-clock monotonic counter; tests inject a deterministic
        counter so timing-derived output is reproducible across runs.
    alerts:
        Live SLO watchdog rules
        (:class:`~repro.obs.alerts.AlertConfig`).  ``None`` (the
        default) never constructs an engine: no per-cycle observation is
        built and simulation output is bit-identical to a build without
        the watchdog.  With a config set, the simulator evaluates every
        rule at each control cycle and streams ``alert_fired`` /
        ``alert_resolved`` records through the trace's sink (if any).
        Alert window state is *not* snapshotted: a restored run re-arms
        its windows empty (alerting is a live operator surface, not part
        of the deterministic-replay contract).
    """

    cycle_length: float = 600.0
    max_time: Optional[float] = None
    cost_model: VirtualizationCostModel = field(default_factory=lambda: PAPER_COST_MODEL)
    prune_completed: bool = True
    failures: Sequence["NodeFailure"] = ()
    fault_model: Optional[ActionFaultModel] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    action_timeout: float = 120.0
    decision_clock: Optional[Callable[[], float]] = None
    alerts: Optional[AlertConfig] = None

    def __post_init__(self) -> None:
        if self.cycle_length <= 0:
            raise ConfigurationError(
                f"cycle length must be positive, got {self.cycle_length}"
            )
        if self.max_time is not None and self.max_time <= 0:
            raise ConfigurationError(f"max time must be positive, got {self.max_time}")
        if self.action_timeout <= 0:
            raise ConfigurationError(
                f"action timeout must be positive, got {self.action_timeout}"
            )
        self.failures = tuple(self.failures)

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-serializable representation.

        Round-trips through :meth:`from_dict` except for
        ``decision_clock`` (a live callable, deliberately excluded — a
        deserialized config always falls back to the wall clock).  A
        :class:`NodeFailure` of infinite duration serializes its
        ``duration`` as ``None``.
        """
        return {
            "cycle_length": self.cycle_length,
            "max_time": self.max_time,
            "cost_model": dataclasses.asdict(self.cost_model),
            "prune_completed": self.prune_completed,
            "failures": [
                {
                    "node": f.node,
                    "fail_time": f.fail_time,
                    "duration": None if f.duration == float("inf") else f.duration,
                    "lose_progress": f.lose_progress,
                }
                for f in self.failures
            ],
            "fault_model": (
                None
                if self.fault_model is None
                else {
                    "specs": {
                        action.value: dataclasses.asdict(spec)
                        for action, spec in self.fault_model.specs.items()
                    },
                    "node_flakiness": dict(self.fault_model.node_flakiness),
                    "seed": self.fault_model.seed,
                }
            ),
            "retry_policy": dataclasses.asdict(self.retry_policy),
            "action_timeout": self.action_timeout,
            "alerts": None if self.alerts is None else self.alerts.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationConfig":
        """Build from a plain dict (inverse of :meth:`to_dict`); unknown
        keys are rejected to surface config typos."""
        known = {
            f.name for f in dataclasses.fields(cls) if f.name != "decision_clock"
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SimulationConfig keys: {sorted(unknown)}"
            )
        kwargs: Dict[str, object] = dict(data)
        if "cost_model" in kwargs and isinstance(kwargs["cost_model"], Mapping):
            kwargs["cost_model"] = VirtualizationCostModel(**kwargs["cost_model"])
        if "failures" in kwargs:
            kwargs["failures"] = tuple(
                NodeFailure(
                    node=f["node"],
                    fail_time=f["fail_time"],
                    duration=(
                        float("inf") if f.get("duration") is None else f["duration"]
                    ),
                    lose_progress=f.get("lose_progress", True),
                )
                if isinstance(f, Mapping)
                else f
                for f in kwargs["failures"]
            )
        fm = kwargs.get("fault_model")
        if fm is not None and isinstance(fm, Mapping):
            from repro.virt.faults import FaultSpec

            kwargs["fault_model"] = ActionFaultModel(
                specs={
                    ActionType(action): FaultSpec(**spec)
                    for action, spec in fm.get("specs", {}).items()
                },
                node_flakiness=fm.get("node_flakiness", {}),
                seed=fm.get("seed", 0),
            )
        if "retry_policy" in kwargs and isinstance(kwargs["retry_policy"], Mapping):
            kwargs["retry_policy"] = RetryPolicy(**kwargs["retry_policy"])
        if isinstance(kwargs.get("alerts"), Mapping):
            kwargs["alerts"] = AlertConfig.from_dict(kwargs["alerts"])
        return cls(**kwargs)


@dataclass(frozen=True)
class NodeFailure:
    """One injected node outage.

    ``lose_progress`` models an abrupt crash — the VM state is gone and
    affected jobs restart from zero; ``False`` models a graceful drain —
    jobs are suspended with progress intact and resumable elsewhere.
    ``duration`` of ``inf`` keeps the node down for the rest of the run.
    """

    node: str
    fail_time: float
    duration: float = float("inf")
    lose_progress: bool = True

    def __post_init__(self) -> None:
        if self.fail_time < 0:
            raise ConfigurationError(
                f"fail time must be >= 0, got {self.fail_time}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )


# Event payloads --------------------------------------------------------
_ARRIVAL = "arrival"
_CYCLE = "cycle"
_COMPLETION = "completion"
_STAGE = "stage"
_FAIL = "fail"
_RESTORE = "restore"
_RETRY = "retry"
_STALL_TIMEOUT = "stall-timeout"


class MixedWorkloadSimulator:
    """Simulates one policy over one workload on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        policy: PlacementPolicy,
        queue: JobQueue,
        arrivals: Iterable[Job],
        txn_apps: Sequence[TransactionalApp] = (),
        batch_model: Optional[BatchWorkloadModel] = None,
        config: Optional[SimulationConfig] = None,
        trace: Optional[SimulationTrace] = None,
        registry: Optional[MetricRegistry] = None,
        profiler: Optional[SpanProfiler] = None,
        tracer=None,
    ) -> None:
        self._cluster = cluster
        self._policy = policy
        self._queue = queue
        self._arrivals: Iterator[Job] = iter(arrivals)
        self._txn_apps = list(txn_apps)
        self._batch_model = batch_model or BatchWorkloadModel(queue)
        self._config = config or SimulationConfig()

        self.metrics = MetricsRecorder(registry=registry)
        #: Optional span profiler: each control cycle becomes a
        #: ``sim.cycle`` span with a ``sim.decide`` child; an APC sharing
        #: the same profiler nests its ``apc.place`` phases beneath it.
        self.profiler = profiler
        self.trace = trace
        #: Optional causal job tracer (``repro.obs.tracing.JobTracer``):
        #: every job lifecycle event — arrival, directives, reconcile
        #: outcomes, suspend/resume, completion — lands on the job's
        #: trace.  ``None`` keeps the simulation byte-identical.
        self.tracer = tracer
        self._state = PlacementState(cluster)
        #: Per running job: (allocated speed MHz, execution start time).
        self._speeds: Dict[str, float] = {}
        self._run_since: Dict[str, float] = {}
        self._pending_arrival: Optional[Job] = None
        self._arrivals_done = False
        self._cycle_end = 0.0
        #: Live in-cycle progress event per job, so mid-cycle
        #: reconfigurations (the fallible-actuator extension) can
        #: invalidate a completion computed under a superseded speed.
        self._progress_events: Dict[str, ScheduledEvent] = {}
        #: Overlapping-outage reference counts per node: a node is
        #: available again only when every outage window covering it
        #: has ended.
        self._down_count: Dict[str, int] = {}
        #: Reconciliation loop for fallible placement actions (built at
        #: run time iff the config carries an active fault model).
        self._reconciler: Optional[Reconciler] = None
        #: Placement changes committed by mid-cycle retries, credited to
        #: the next cycle sample.
        self._deferred_changes = 0
        #: Memory moved by mid-cycle retried migrations, likewise
        #: credited to the next cycle sample.
        self._deferred_moved_mb = 0.0
        #: Live SLO watchdog (built at run time iff the config carries
        #: an :class:`~repro.obs.alerts.AlertConfig`; ``None`` keeps the
        #: control loop untouched).
        self.alert_engine: Optional[AlertEngine] = None
        #: The persistent event queue.  ``None`` until the first
        #: :meth:`run` (or a :meth:`restore`) — its presence is what
        #: distinguishes a fresh simulator from a started one.
        self._events: Optional[EventQueue] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def state(self) -> PlacementState:
        """The placement currently in effect."""
        return self._state

    @property
    def config(self) -> SimulationConfig:
        return self._config

    def run(self, until: Optional[float] = None) -> MetricsRecorder:
        """Run the simulation and return the metrics recorder.

        With ``until`` set, events are processed only while the next
        event's time is ``<= until``; the simulator keeps all state (the
        event queue persists across calls) and a later ``run()`` — or a
        :meth:`snapshot` followed by :meth:`restore` + ``run()`` on a
        fresh simulator — continues byte-identically where this call
        stopped.  Without ``until`` the run drains to completion.
        """
        if self._events is None:
            self._events = EventQueue()
            self._init_reconciler()
            self._init_alerts()
            self._bootstrap(self._events)
        events = self._events

        while True:
            next_time = events.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until + EPSILON:
                break
            now, (kind, payload) = events.pop()
            if self._config.max_time is not None and now > self._config.max_time + EPSILON:
                break
            if kind == _ARRIVAL:
                self._queue.submit(payload)
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.ARRIVAL, payload.job_id,
                        goal=round(payload.completion_goal, 1),
                    )
                if self.tracer is not None:
                    payload.trace_id = self.tracer.job_arrival(
                        now, payload.job_id,
                        goal=round(payload.completion_goal, 1),
                    )
                self._schedule_next_arrival(events, now)
            elif kind == _COMPLETION:
                self._complete_job(payload, now)
            elif kind == _STAGE:
                self._cross_stage_boundary(payload, now, events)
            elif kind == _FAIL:
                self._fail_node(payload, now)
            elif kind == _RESTORE:
                self._restore_node(payload, now)
            elif kind == _RETRY:
                self._retry_pending(payload, now, events)
            elif kind == _STALL_TIMEOUT:
                self._stall_timed_out(payload, now, events)
            elif kind == _CYCLE:
                self._control_cycle(now, events)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")
        registry = self.metrics.registry
        if registry is not None:
            engine_gauge = registry.gauge(
                "repro_engine_events",
                "Discrete-event engine lifetime tallies",
                ("tally",),
            )
            for tally, value in events.stats().items():
                engine_gauge.set(value, tally=tally)
        return self.metrics

    @property
    def next_event_time(self) -> Optional[float]:
        """Time of the earliest scheduled event, or ``None`` when the
        run has drained (or never started).  Lets chunked drivers — e.g.
        sweep workers emitting progress heartbeats between
        ``run(until=...)`` calls — detect completion without guessing a
        horizon."""
        return None if self._events is None else self._events.peek_time()

    def _init_alerts(self) -> None:
        if self._config.alerts is None:
            return
        sink = self.trace.sink if self.trace is not None else None
        self.alert_engine = AlertEngine(
            self._config.alerts, sink=sink, registry=self.metrics.registry
        )
        #: Baselines for per-cycle deltas the watchdog consumes.
        self._alert_completions_seen = len(self.metrics.completions)
        self._alert_prev_moves: Dict[str, int] = {}
        self._alert_prev_attempts = 0
        self._alert_prev_stalls = 0

    def _init_reconciler(self) -> None:
        fault_model = self._config.fault_model
        if fault_model is not None and fault_model.enabled:
            # A fresh sampler per run: re-running the same configuration
            # replays the same seeded fault/jitter stream.
            self._reconciler = Reconciler(
                fault_model.sampler(),
                self._config.retry_policy,
                self._config.action_timeout,
                self.metrics.faults,
                tracer=self.tracer,
            )

    def _bootstrap(self, events: EventQueue) -> None:
        """Seed the fresh event queue: first arrival, injected node
        outages, and the control cycle at t = 0."""
        self._schedule_next_arrival(events, 0.0)
        for failure in self._config.failures:
            if failure.node not in self._cluster:
                raise SimulationError(f"failure targets unknown node {failure.node!r}")
            events.schedule(
                failure.fail_time, (_FAIL, failure), priority=PRIORITY_ARRIVAL
            )
            if failure.duration != float("inf"):
                events.schedule(
                    failure.fail_time + failure.duration,
                    (_RESTORE, failure.node),
                    priority=PRIORITY_ARRIVAL,
                )
        events.schedule(0.0, (_CYCLE, None), priority=PRIORITY_CYCLE)

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """The simulator's complete state as plain JSON data.

        Captures everything a byte-identical continuation needs: the
        queue and arrival stream (with per-job runtime state), placement
        matrices, node availability windows, in-flight reconciliation
        actions with their retry/stall timers, the event queue (live
        *and* cancelled entries, with original sequence numbers), the
        fault/jitter RNG stream, and all recorded metrics and trace
        events.  ``restore(snapshot)`` on a freshly constructed simulator
        with the same configuration, followed by ``run()``, produces
        exactly the trace, metrics, and audit stream of an uninterrupted
        run.

        Snapshotting a never-started simulator is allowed (it bootstraps
        first, so the restored run equals a straight ``run()``).
        """
        if self._events is None:
            self._events = EventQueue()
            self._init_reconciler()
            self._init_alerts()
            self._bootstrap(self._events)
        remaining = list(self._arrivals)
        self._arrivals = iter(remaining)
        rec = self._reconciler
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "config": self._config.to_dict(),
            "cluster": {
                "nodes": list(self._cluster.node_names),
                "availability": self._cluster.availability(),
                "down_count": dict(self._down_count),
            },
            "queue": self._queue.to_dict(),
            "arrivals": [job.to_dict() for job in remaining],
            "arrivals_done": self._arrivals_done,
            "placement": self._state.to_dict(),
            "speeds": dict(self._speeds),
            "run_since": dict(self._run_since),
            "cycle_end": self._cycle_end,
            "deferred_changes": self._deferred_changes,
            "deferred_moved_mb": self._deferred_moved_mb,
            "reconciler": (
                None
                if rec is None
                else {
                    "rng": rec.sampler.rng_state(),
                    "pending": {
                        app_id: p.to_dict() for app_id, p in rec.pending.items()
                    },
                }
            ),
            "metrics": self.metrics.state_dict(),
            "trace": None if self.trace is None else self.trace.state_dict(),
            "tracer": None if self.tracer is None else self.tracer.state_dict(),
            "engine": self._events.snapshot_base(),
            "events": [self._encode_event(e) for e in self._events.dump_events()],
            "cycles_recorded": len(self.metrics.cycles),
        }

    def restore(self, snapshot: Mapping[str, object]) -> None:
        """Load a :meth:`snapshot` into this (fresh, same-config)
        simulator; the next :meth:`run` continues where it left off.

        Raises :class:`~repro.errors.CheckpointError` — never a bare
        ``KeyError`` — when the snapshot is truncated, malformed, carries
        an unsupported schema version, or was taken under a different
        configuration or cluster.
        """
        if self._events is not None:
            raise CheckpointError(
                "restore() requires a fresh simulator (run() already started)"
            )
        try:
            self._restore_impl(snapshot)
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(
                f"snapshot is truncated or malformed: {exc!r}"
            ) from exc

    def _restore_impl(self, snapshot: Mapping[str, object]) -> None:
        check_version(snapshot, "simulator snapshot")
        config = require(snapshot, "config", "simulator snapshot")
        if config != self._config.to_dict():
            raise CheckpointError(
                "snapshot was taken under a different SimulationConfig; "
                "rebuild the simulator with the configuration it was "
                "snapshotted with"
            )
        cluster_data = require(snapshot, "cluster", "simulator snapshot")
        if list(cluster_data["nodes"]) != list(self._cluster.node_names):
            raise CheckpointError(
                "snapshot belongs to a different cluster: node sets differ"
            )
        self._cluster.restore_availability(cluster_data["availability"])
        self._down_count = {
            name: int(count) for name, count in cluster_data["down_count"].items()
        }
        self._queue.load_state(
            Job.from_dict(j) for j in require(snapshot, "queue", "snapshot")["jobs"]
        )
        remaining = [Job.from_dict(j) for j in snapshot["arrivals"]]
        self._arrivals = iter(remaining)
        self._arrivals_done = bool(snapshot["arrivals_done"])
        self._state = PlacementState.from_dict(self._cluster, snapshot["placement"])
        # Metrics: the fault stats object is restored in place because
        # the reconciler (rebuilt next) holds it by reference.
        self.metrics.restore_state(snapshot["metrics"])
        trace_state = snapshot["trace"]
        if self.trace is not None and trace_state is not None:
            self.trace.restore_state(trace_state)
        # ``.get``: pre-tracer snapshots simply lack the key.
        tracer_state = snapshot.get("tracer")
        if self.tracer is not None and tracer_state is not None:
            self.tracer.restore_state(tracer_state)
        self._init_reconciler()
        self._init_alerts()
        rec_state = snapshot["reconciler"]
        if rec_state is not None:
            if self._reconciler is None:
                raise CheckpointError(
                    "snapshot carries reconciler state but this simulator's "
                    "config has no active fault model"
                )
            self._reconciler.sampler.set_rng_state(rec_state["rng"])
            self._reconciler.pending.clear()
            for app_id, data in rec_state["pending"].items():
                self._reconciler.pending[app_id] = PendingAction.from_dict(data)
        events = EventQueue()
        events.restore_base(require(snapshot, "engine", "snapshot"))
        for entry in require(snapshot, "events", "snapshot"):
            self._decode_event(entry, events)
        self._speeds = {k: float(v) for k, v in snapshot["speeds"].items()}
        self._run_since = {k: float(v) for k, v in snapshot["run_since"].items()}
        self._cycle_end = float(snapshot["cycle_end"])
        self._deferred_changes = int(snapshot["deferred_changes"])
        self._deferred_moved_mb = float(snapshot["deferred_moved_mb"])
        self._events = events

    def _encode_event(self, event: ScheduledEvent) -> Dict[str, object]:
        """One in-heap event as JSON data.

        Cancelled entries keep only their heap key: the payload is never
        delivered, but the entry must survive so dead-entry counts (and
        therefore compaction sweeps and lifetime tallies) replay exactly.
        """
        base: Dict[str, object] = {
            "time": event.time, "priority": event.priority, "seq": event.seq,
        }
        if event.cancelled:
            base["cancelled"] = True
            return base
        kind, payload = event.payload
        base["kind"] = kind
        if kind == _ARRIVAL:
            base["job"] = payload.to_dict()
        elif kind in (_COMPLETION, _STAGE):
            base["job_id"] = payload
        elif kind == _FAIL:
            base["failure"] = {
                "node": payload.node,
                "fail_time": payload.fail_time,
                "duration": (
                    None if payload.duration == float("inf") else payload.duration
                ),
                "lose_progress": payload.lose_progress,
            }
        elif kind == _RESTORE:
            base["node"] = payload
        elif kind in (_RETRY, _STALL_TIMEOUT):
            base["app_id"] = payload.app_id
        elif kind != _CYCLE:  # pragma: no cover - defensive
            raise SimulationError(f"cannot serialize event kind {kind!r}")
        return base

    def _decode_event(self, entry: Mapping[str, object], events: EventQueue) -> None:
        """Re-inject one serialized event, relinking live handles."""
        time, priority, seq = entry["time"], entry["priority"], entry["seq"]
        if entry.get("cancelled"):
            events.inject(time, priority, seq, None, cancelled=True)
            return
        kind = entry["kind"]
        if kind == _ARRIVAL:
            payload: object = Job.from_dict(entry["job"])
        elif kind in (_COMPLETION, _STAGE):
            payload = entry["job_id"]
        elif kind == _FAIL:
            f = entry["failure"]
            payload = NodeFailure(
                node=f["node"],
                fail_time=f["fail_time"],
                duration=float("inf") if f["duration"] is None else f["duration"],
                lose_progress=f["lose_progress"],
            )
        elif kind == _RESTORE:
            payload = entry["node"]
        elif kind in (_RETRY, _STALL_TIMEOUT):
            rec = self._reconciler
            if rec is None or entry["app_id"] not in rec.pending:
                raise CheckpointError(
                    f"snapshot event references unknown pending action "
                    f"{entry['app_id']!r}"
                )
            # The restored event must reference the SAME PendingAction
            # object the reconciler tracks: the simulator's staleness
            # checks compare by identity.
            payload = rec.pending[entry["app_id"]]
        elif kind == _CYCLE:
            payload = None
        else:
            raise CheckpointError(f"unknown event kind {kind!r} in snapshot")
        handle = events.inject(time, priority, seq, (kind, payload))
        if kind in (_COMPLETION, _STAGE):
            self._progress_events[payload] = handle
        elif kind in (_RETRY, _STALL_TIMEOUT):
            payload.event_handle = handle

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self, events: EventQueue, now: float) -> None:
        job = next(self._arrivals, None)
        if job is None:
            self._arrivals_done = True
            return
        if job.submit_time < now - EPSILON:
            raise SimulationError(
                f"arrival stream not sorted: {job.job_id} at {job.submit_time} < {now}"
            )
        events.schedule(job.submit_time, (_ARRIVAL, job), priority=PRIORITY_ARRIVAL)

    def _complete_job(self, job_id: str, now: float) -> None:
        self._progress_events.pop(job_id, None)  # this event just fired
        job = self._queue.job(job_id)
        if job.status is not JobStatus.RUNNING:
            return  # stale event that escaped cancellation
        self._advance_job(job, now)
        # Snap exact completion: floating residue below a millicycle.
        job.cpu_consumed = job.profile.total_work
        job.status = JobStatus.COMPLETED
        job.completion_time = now
        self._speeds.pop(job_id, None)
        self._run_since.pop(job_id, None)
        self.metrics.record_completion(job)
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.COMPLETION, job_id,
                met=job.met_deadline(),
                distance=round(job.deadline_distance(), 1),
            )
        if self.tracer is not None:
            self.tracer.completion(
                now, job_id,
                met=job.met_deadline(),
                distance=round(job.deadline_distance(), 1),
            )
            self._record_wait_profile(job_id)

    def _record_wait_profile(self, job_id: str) -> None:
        """Feed the completed job's wait-time decomposition into the
        metrics recorder.  Skipped (never fatal) when the tracer's
        capacity bound evicted part of the job's chain."""
        from repro.errors import ConfigurationError
        from repro.obs.tracing import critical_path

        try:
            path = critical_path(self.tracer.history_of(job_id))
        except ConfigurationError:
            return
        self.metrics.record_wait_profile(path)

    def _advance_job(self, job: Job, now: float) -> None:
        """Credit work done since the job last ran."""
        speed = self._speeds.get(job.job_id)
        if speed is None:
            return
        since = self._run_since.get(job.job_id, now)
        dt = max(0.0, now - since)
        if dt > 0:
            job.advance(speed * dt)
            self._run_since[job.job_id] = now

    def _fail_node(self, failure: NodeFailure, now: float) -> None:
        """Take a node down: evict its placements and requeue its jobs.

        Evictions happen *before* the node is marked unavailable — the
        capacity bookkeeping must still see the node's real capacity
        while allocations are being released.

        Outage windows may overlap (or abut): a reference count per node
        tracks how many windows currently cover it, and the node comes
        back only when the *last* one ends.  For an already-down node
        the eviction sweep below is naturally a no-op.
        """
        self._down_count[failure.node] = self._down_count.get(failure.node, 0) + 1
        node = self._cluster.node(failure.node)
        for app_id in list(self._state.apps_on(failure.node)):
            count = self._state.instances(app_id).get(failure.node, 0)
            if count:
                self._state.remove(app_id, failure.node, count)
            if app_id not in self._queue:
                continue  # transactional instance: re-placed next cycle
            job = self._queue.job(app_id)
            if not job.is_incomplete:
                continue
            still_placed = bool(self._state.nodes_of(app_id))
            if still_placed:
                # A parallel job survives on its remaining instances at a
                # proportionally reduced speed until the next cycle.
                self._advance_job(job, now)
                remaining_speed = min(
                    self._state.cpu_of(app_id), job.max_speed
                )
                if remaining_speed > EPSILON:
                    self._speeds[app_id] = remaining_speed
                    self._run_since[app_id] = now
                else:
                    self._speeds.pop(app_id, None)
                continue
            if job.status is JobStatus.RUNNING:
                self._advance_job(job, now)
                self._speeds.pop(app_id, None)
                self._run_since.pop(app_id, None)
                if failure.lose_progress:
                    job.cpu_consumed = 0.0
                    job.status = JobStatus.NOT_STARTED
                    job.node = None
                else:
                    job.status = JobStatus.SUSPENDED
                if self.tracer is not None:
                    self.tracer.directive(
                        now, app_id, "suspend",
                        reason="node-failure", node=failure.node,
                        lost_progress=failure.lose_progress,
                    )
            elif job.status is JobStatus.SUSPENDED and failure.lose_progress:
                if job.node == failure.node:
                    job.cpu_consumed = 0.0
                    job.status = JobStatus.NOT_STARTED
                    job.node = None
                    if self.tracer is not None:
                        self.tracer.directive(
                            now, app_id, "suspend",
                            reason="node-failure", node=failure.node,
                            lost_progress=True,
                        )
        node.available = False
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.SUSPEND, failure.node,
                event="node-failure", lose_progress=failure.lose_progress,
            )

    def _restore_node(self, node_name: str, now: float) -> None:
        remaining = self._down_count.get(node_name, 1) - 1
        self._down_count[node_name] = remaining
        if remaining > 0:
            return  # another outage window still covers this node
        self._cluster.node(node_name).available = True
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.RESUME, node_name, event="node-restore"
            )

    def _schedule_progress(self, job: Job, start: float, events: EventQueue) -> None:
        """Schedule the job's next in-cycle progress event.

        Within a control cycle allocations are constant, but a job's
        *speed cap* changes at stage boundaries (§4.1: each stage has its
        own ``ω^max``).  The next event is whichever comes first of the
        stage boundary and the completion, if it lands inside the cycle.
        """
        self._cancel_progress(job.job_id)
        speed = self._speeds.get(job.job_id)
        if speed is None or speed <= EPSILON:
            return
        if job.profile.is_last_stage(job.cpu_consumed):
            completion = start + job.remaining_work / speed
            if completion <= self._cycle_end + EPSILON:
                self._progress_events[job.job_id] = events.schedule(
                    completion, (_COMPLETION, job.job_id),
                    priority=PRIORITY_COMPLETION,
                )
            return
        boundary = start + job.profile.work_to_stage_end(job.cpu_consumed) / speed
        if boundary <= self._cycle_end + EPSILON:
            self._progress_events[job.job_id] = events.schedule(
                boundary, (_STAGE, job.job_id), priority=PRIORITY_COMPLETION
            )

    def _cancel_progress(self, job_id: str) -> None:
        """Invalidate the job's pending in-cycle progress event, if any."""
        handle = self._progress_events.pop(job_id, None)
        if handle is not None:
            handle.cancel()

    def _cross_stage_boundary(
        self, job_id: str, now: float, events: EventQueue
    ) -> None:
        """The job finished a stage mid-cycle: re-apply the new stage's
        speed cap (the allocation itself only changes at control points)
        and schedule the next progress event."""
        self._progress_events.pop(job_id, None)  # this event just fired
        job = self._queue.job(job_id)
        if job.status is not JobStatus.RUNNING:
            return  # reconfigured away before the boundary
        self._advance_job(job, now)
        allocated = self._state.cpu_of(job.job_id)
        speed = min(allocated, job.max_speed)
        if speed <= EPSILON:
            self._speeds.pop(job.job_id, None)
            return
        self._speeds[job.job_id] = speed
        self._run_since[job.job_id] = now
        self._schedule_progress(job, now, events)

    def _span(self, name: str, **attrs: object):
        """A profiler span, or the shared no-op when un-instrumented."""
        if self.profiler is None:
            return NULL_SPAN
        return self.profiler.span(name, **attrs)

    def _control_cycle(self, now: float, events: EventQueue) -> None:
        with self._span("sim.cycle", t=now):
            self._control_cycle_impl(now, events)

    def _control_cycle_impl(self, now: float, events: EventQueue) -> None:
        # 0. Settle in-flight fallible actions: the new cycle supersedes
        #    pending retries/stalls and plans from the *actual* placement.
        self._resolve_in_flight(now)

        # 1. Bring all running jobs' progress up to date.
        for job in self._queue.running():
            self._advance_job(job, now)

        # 2. Ask the policy for the next placement.
        clock = self._config.decision_clock or _wallclock.perf_counter
        with self._span("sim.decide"):
            t0 = clock()
            new_state = self._policy.decide(self._state, now)
            decision_seconds = clock() - t0

        # 3. Apply the placement diff as VM control actions.  With a
        #    fault model active, each action may fail or stall; the
        #    *effective* state patches failures out of the desired one.
        prev_matrix = self._state.as_matrix()
        if self._reconciler is not None:
            changes, delays, moved_mb, effective = self._apply_placement_fallible(
                new_state, now, events
            )
        else:
            changes, delays, moved_mb = self._apply_placement(new_state, now)
            effective = new_state
        changes += self._deferred_changes
        self._deferred_changes = 0
        moved_mb += self._deferred_moved_mb
        self._deferred_moved_mb = 0.0
        removed, added = diff_placements(prev_matrix, effective.as_matrix())
        churn = sum(c for _, _, c in removed) + sum(c for _, _, c in added)

        # 4. Refresh execution speeds and schedule in-cycle progress
        #    events (stage boundaries and completions).  Jobs frozen by
        #    a stalled action do not execute until it resolves.
        self._cycle_end = now + self._config.cycle_length
        self._speeds = {}
        self._state = effective
        frozen = self._frozen_apps()
        for job in self._queue.running():
            if job.job_id in frozen:
                continue
            allocated = effective.cpu_of(job.job_id)
            speed = min(allocated, job.max_speed)
            if speed <= EPSILON:
                continue
            self._speeds[job.job_id] = speed
            start = now + delays.get(job.job_id, 0.0)
            self._run_since[job.job_id] = start
            self._schedule_progress(job, start, events)

        # 5. Record the cycle sample.
        self._record_cycle(effective, now, changes, decision_seconds, churn, moved_mb)
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.CYCLE, "controller",
                changes=changes,
                running=len(self._speeds),
                decision_ms=round(decision_seconds * 1e3, 2),
            )
        if self.alert_engine is not None:
            self.alert_engine.observe(self._observe_cycle(effective, now))

        # 6. Book-keeping and the next cycle.
        if self._config.prune_completed:
            self._queue.prune_completed()
        more_batch = bool(self._queue.incomplete()) or not self._arrivals_done
        next_cycle = now + self._config.cycle_length
        past_horizon = (
            self._config.max_time is not None
            and next_cycle > self._config.max_time + EPSILON
        )
        if more_batch and not past_horizon:
            events.schedule(next_cycle, (_CYCLE, None), priority=PRIORITY_CYCLE)

    # ------------------------------------------------------------------
    # Placement application
    # ------------------------------------------------------------------
    def _apply_placement(
        self, new_state: PlacementState, now: float
    ) -> Tuple[int, Dict[str, float], float]:
        """Classify per-job placement changes and update job state.

        Returns ``(change_count, per-job execution delays, migrated
        memory MB)``.  Change semantics (and Figure 4's counting):

        * queued job placed            -> BOOT (not a "change")
        * running job unplaced         -> SUSPEND (1 change)
        * suspended job, same node     -> RESUME (1 change)
        * suspended job, other node    -> migrate + resume (1 change)
        * running job, other node      -> live MIGRATE (1 change)
        """
        costs = self._config.cost_model
        changes = 0
        moved_mb = 0.0
        delays: Dict[str, float] = {}
        for job in self._queue.incomplete():
            old_set = set(self._state.nodes_of(job.job_id))
            new_set = set(new_state.nodes_of(job.job_id))

            if not new_set:
                if job.status is JobStatus.RUNNING:
                    job.status = JobStatus.SUSPENDED
                    job.suspend_count += 1
                    changes += 1
                    self._speeds.pop(job.job_id, None)
                    self._run_since.pop(job.job_id, None)
                    # job.node keeps the suspension node for resume/migrate
                    # classification next time it is placed.
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.SUSPEND, job.job_id,
                            node=job.node,
                        )
                    if self.tracer is not None:
                        self.tracer.directive(
                            now, job.job_id, "suspend", node=job.node
                        )
                continue

            primary = sorted(new_set)[0]
            if job.status is JobStatus.NOT_STARTED:
                job.status = JobStatus.RUNNING
                job.start_time = now
                job.node = primary
                delays[job.job_id] = costs.boot_cost(job.memory_mb)
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.BOOT, job.job_id, node=primary,
                        delay=round(delays[job.job_id], 2),
                    )
                if self.tracer is not None:
                    self.tracer.directive(
                        now, job.job_id, "boot", node=primary,
                        delay=round(delays[job.job_id], 2),
                    )
            elif job.status is JobStatus.SUSPENDED:
                if job.node in new_set:
                    job.resume_count += 1
                    delays[job.job_id] = costs.resume_cost(job.memory_mb)
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.RESUME, job.job_id,
                            node=job.node,
                            delay=round(delays[job.job_id], 2),
                        )
                    if self.tracer is not None:
                        self.tracer.directive(
                            now, job.job_id, "resume", node=job.node,
                            delay=round(delays[job.job_id], 2),
                        )
                else:
                    job.migration_count += 1
                    moved_mb += job.memory_mb
                    delays[job.job_id] = costs.migrate_cost(
                        job.memory_mb
                    ) + costs.resume_cost(job.memory_mb)
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.MIGRATE, job.job_id,
                            source=job.node, node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                    if self.tracer is not None:
                        self.tracer.directive(
                            now, job.job_id, "migrate",
                            source=job.node, node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                job.status = JobStatus.RUNNING
                job.node = primary if job.node not in new_set else job.node
                changes += 1
            elif job.status is JobStatus.RUNNING:
                if old_set and old_set - new_set:
                    # Losing nodes means (at least part of) the job moved:
                    # a live migration.  Pure growth (new instances of a
                    # parallel job booting on extra nodes) is dispatch,
                    # not reconfiguration churn.
                    job.migration_count += 1
                    moved_mb += job.memory_mb
                    delays[job.job_id] = costs.migrate_cost(job.memory_mb)
                    changes += 1
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.MIGRATE, job.job_id,
                            source=sorted(old_set)[0], node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                    if self.tracer is not None:
                        self.tracer.directive(
                            now, job.job_id, "migrate",
                            source=sorted(old_set)[0], node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                if job.node not in new_set:
                    job.node = primary
        return changes, delays, moved_mb

    # ------------------------------------------------------------------
    # Fallible placement application (fault-injection extension)
    # ------------------------------------------------------------------
    def _frozen_apps(self) -> set:
        """Apps frozen mid-action by a stalled attempt (no execution)."""
        if self._reconciler is None:
            return set()
        return {
            app_id
            for app_id, pending in self._reconciler.pending.items()
            if pending.holding
        }

    def _apply_placement_fallible(
        self, new_state: PlacementState, now: float, events: EventQueue
    ) -> Tuple[int, Dict[str, float], float, PlacementState]:
        """Like :meth:`_apply_placement`, but every action attempt is
        sampled against the fault model.

        Returns ``(change_count, per-job delays, migrated memory MB,
        effective state)``.  The
        effective state starts as a copy of the desired one and is
        patched for every failed action: the instance goes back exactly
        where it was, so capacity is never double-counted and the next
        cycle's policy plans from what the cluster actually looks like.
        """
        costs = self._config.cost_model
        changes = 0
        moved_mb = 0.0
        delays: Dict[str, float] = {}
        actual = new_state.copy()
        for job in self._queue.incomplete():
            old_set = set(self._state.nodes_of(job.job_id))
            new_set = set(new_state.nodes_of(job.job_id))

            # Classification mirrors _apply_placement exactly.
            if not new_set:
                if job.status is not JobStatus.RUNNING:
                    continue
                action = ActionType.SUSPEND
                base = costs.suspend_cost(job.memory_mb)
            elif job.status is JobStatus.NOT_STARTED:
                action = ActionType.BOOT
                base = costs.boot_cost(job.memory_mb)
            elif job.status is JobStatus.SUSPENDED:
                if job.node in new_set:
                    action = ActionType.RESUME
                    base = costs.resume_cost(job.memory_mb)
                else:
                    action = ActionType.MIGRATE
                    base = costs.migrate_cost(job.memory_mb) + costs.resume_cost(
                        job.memory_mb
                    )
            elif job.status is JobStatus.RUNNING and old_set and old_set - new_set:
                action = ActionType.MIGRATE
                base = costs.migrate_cost(job.memory_mb)
            else:
                # Pure growth (or no-op): dispatch, never a fallible action.
                if new_set and job.node not in new_set:
                    job.node = sorted(new_set)[0]
                continue

            pending = PendingAction(
                action=action,
                app_id=job.job_id,
                dest_nodes={
                    n: new_state.instances(job.job_id).get(n, 0) for n in new_set
                },
                dest_cpu={n: new_state.cpu_on(job.job_id, n) for n in new_set},
                prior_nodes={
                    n: self._state.instances(job.job_id).get(n, 0) for n in old_set
                },
                prior_cpu={n: self._state.cpu_on(job.job_id, n) for n in old_set},
                prior_status=job.status,
                prior_node_attr=job.node,
                memory_mb=job.memory_mb,
                base_delay=base,
                issued_at=now,
            )
            directive = self._reconciler.attempt(pending, now)
            if directive.decision is Decision.COMMIT:
                self._commit_transition(
                    job, pending, now, pending.base_delay + directive.extra_delay,
                    delays,
                )
                if action in CHANGE_ACTIONS:
                    changes += 1
                if action is ActionType.MIGRATE:
                    moved_mb += job.memory_mb
            elif directive.decision is Decision.STALL:
                self._begin_stall(pending, job, directive, now, events)
            else:
                # Failed outright: the instance stays where it was.
                self._emit_fault(
                    TraceEventKind.ACTION_FAILED, pending, now, reason="fault"
                )
                if not self._revert_in(actual, job, pending, now):
                    changes += 1  # degraded to a forced suspension
                self._dispatch_followup(pending, directive, now, events)
        return changes, delays, moved_mb, actual

    def _commit_transition(
        self,
        job: Job,
        pending: PendingAction,
        now: float,
        delay: float,
        delays: Dict[str, float],
    ) -> None:
        """Apply the job-state effects of a successfully committed action
        (the placement itself is already in the target state)."""
        action = pending.action
        if action is ActionType.SUSPEND:
            job.status = JobStatus.SUSPENDED
            job.suspend_count += 1
            self._speeds.pop(job.job_id, None)
            self._run_since.pop(job.job_id, None)
            self._cancel_progress(job.job_id)
            if self.trace is not None:
                self.trace.emit(
                    now, TraceEventKind.SUSPEND, job.job_id, node=job.node
                )
            if self.tracer is not None:
                self.tracer.directive(now, job.job_id, "suspend", node=job.node)
            return
        primary = pending.primary_node
        delays[job.job_id] = delay
        if action is ActionType.BOOT:
            job.status = JobStatus.RUNNING
            job.start_time = now
            job.node = primary
            if self.trace is not None:
                self.trace.emit(
                    now, TraceEventKind.BOOT, job.job_id, node=primary,
                    delay=round(delay, 2),
                )
            if self.tracer is not None:
                self.tracer.directive(
                    now, job.job_id, "boot", node=primary, delay=round(delay, 2)
                )
        elif action is ActionType.RESUME:
            job.resume_count += 1
            job.status = JobStatus.RUNNING
            if self.trace is not None:
                self.trace.emit(
                    now, TraceEventKind.RESUME, job.job_id, node=job.node,
                    delay=round(delay, 2),
                )
            if self.tracer is not None:
                self.tracer.directive(
                    now, job.job_id, "resume", node=job.node,
                    delay=round(delay, 2),
                )
        elif pending.prior_status is JobStatus.SUSPENDED:
            # Migrate + resume of a suspended instance.
            job.migration_count += 1
            job.status = JobStatus.RUNNING
            if self.trace is not None:
                self.trace.emit(
                    now, TraceEventKind.MIGRATE, job.job_id,
                    source=job.node, node=primary, delay=round(delay, 2),
                )
            if self.tracer is not None:
                self.tracer.directive(
                    now, job.job_id, "migrate",
                    source=job.node, node=primary, delay=round(delay, 2),
                )
            job.node = primary
        else:
            # Live migration of a running instance.
            job.migration_count += 1
            if self.trace is not None or self.tracer is not None:
                source = (
                    sorted(pending.prior_nodes)[0]
                    if pending.prior_nodes else job.node
                )
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.MIGRATE, job.job_id,
                        source=source, node=primary, delay=round(delay, 2),
                    )
                if self.tracer is not None:
                    self.tracer.directive(
                        now, job.job_id, "migrate",
                        source=source, node=primary, delay=round(delay, 2),
                    )
            if job.node not in pending.dest_nodes:
                job.node = primary

    def _revert_in(
        self,
        state: PlacementState,
        job: Job,
        pending: PendingAction,
        now: float,
    ) -> bool:
        """Put the instance back where it was before the failed action.

        Mutates ``state``: removes whatever the action claimed at the
        destination and restores the prior placement and CPU shares.
        Returns ``False`` when the fallback slot has meanwhile been given
        away (or its node died) and the job had to be force-suspended
        instead — progress is kept, and the next cycle re-plans it.
        """
        app_id = job.job_id
        for node in sorted(pending.dest_nodes):
            have = state.instances(app_id).get(node, 0)
            if have:
                state.remove(app_id, node, min(have, pending.dest_nodes[node]))
        placed = []
        try:
            for node in sorted(pending.prior_nodes):
                count = pending.prior_nodes[node]
                if count <= 0:
                    continue
                if not self._cluster.node(node).available:
                    raise CapacityError(f"fallback node {node} is down")
                state.place(app_id, node, pending.memory_mb, count)
                placed.append((node, count))
        except (CapacityError, PlacementError):
            for node, count in placed:
                state.remove(app_id, node, count)
            if pending.prior_status is JobStatus.RUNNING:
                job.status = JobStatus.SUSPENDED
                job.suspend_count += 1
                self._speeds.pop(app_id, None)
                self._run_since.pop(app_id, None)
                self._cancel_progress(app_id)
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.SUSPEND, app_id,
                        node=pending.prior_node_attr, reason="fallback-lost",
                    )
                if self.tracer is not None:
                    self.tracer.directive(
                        now, app_id, "suspend",
                        node=pending.prior_node_attr, reason="fallback-lost",
                    )
            return False
        for node in sorted(pending.prior_cpu):
            cpu = pending.prior_cpu[node]
            if cpu <= EPSILON:
                continue
            grant = min(cpu, state.cpu_available(node) + state.cpu_on(app_id, node))
            state.set_cpu(app_id, node, grant)
        return True

    def _begin_stall(
        self,
        pending: PendingAction,
        job: Job,
        directive: Directive,
        now: float,
        events: EventQueue,
    ) -> None:
        """The action is in flight but not converging: the destination
        resources stay claimed, the instance is frozen (it neither
        executes nor fails) until the stall timeout fires."""
        pending.holding = True
        self._speeds.pop(job.job_id, None)
        self._run_since.pop(job.job_id, None)
        self._cancel_progress(job.job_id)
        pending.event_handle = events.schedule(
            directive.at, (_STALL_TIMEOUT, pending), priority=PRIORITY_ARRIVAL
        )
        self._emit_fault(
            TraceEventKind.ACTION_STALLED, pending, now,
            timeout_at=round(directive.at, 1),
        )

    def _dispatch_followup(
        self,
        pending: PendingAction,
        directive: Directive,
        now: float,
        events: EventQueue,
    ) -> None:
        """Schedule (or close out) the aftermath of a failed attempt."""
        if directive.decision is Decision.RETRY:
            self._emit_fault(
                TraceEventKind.ACTION_RETRIED, pending, now,
                retry_at=round(directive.at, 1),
            )
            pending.event_handle = events.schedule(
                directive.at, (_RETRY, pending), priority=PRIORITY_ARRIVAL
            )
        else:
            self._emit_fault(TraceEventKind.ACTION_ABANDONED, pending, now)

    def _retry_pending(
        self, pending: PendingAction, now: float, events: EventQueue
    ) -> None:
        """A scheduled retry fired: re-attempt the action mid-cycle."""
        rec = self._reconciler
        if rec is None or rec.pending.get(pending.app_id) is not pending:
            return  # superseded by a newer control cycle
        pending.event_handle = None
        job = (
            self._queue.job(pending.app_id)
            if pending.app_id in self._queue else None
        )
        if job is None or job.status is not pending.prior_status:
            # The world changed under us (completion, node outage, ...):
            # the retry no longer applies.
            rec.supersede(pending, now)
            return
        directive = rec.attempt(pending, now)
        if directive.decision is Decision.COMMIT:
            self._commit_retry(pending, job, directive.extra_delay, now, events)
        elif directive.decision is Decision.STALL:
            try:
                self._claim_destination(pending, job)
            except ActionFailedError as exc:
                self._destination_lost(pending, now, events, exc.reason)
            else:
                self._begin_stall(pending, job, directive, now, events)
        else:
            self._emit_fault(
                TraceEventKind.ACTION_FAILED, pending, now, reason="fault"
            )
            self._dispatch_followup(pending, directive, now, events)

    def _commit_retry(
        self,
        pending: PendingAction,
        job: Job,
        extra_delay: float,
        now: float,
        events: EventQueue,
    ) -> None:
        """A retried action finally succeeded: move the instance in the
        live state and restart execution under the new placement."""
        try:
            self._claim_destination(pending, job)
        except ActionFailedError as exc:
            self._destination_lost(pending, now, events, exc.reason)
            return
        self._advance_job(job, now)  # credit progress made on the fallback
        delays: Dict[str, float] = {}
        self._commit_transition(
            job, pending, now, pending.base_delay + extra_delay, delays
        )
        if pending.action in CHANGE_ACTIONS:
            self._deferred_changes += 1
        if pending.action is ActionType.MIGRATE:
            self._deferred_moved_mb += pending.memory_mb
        if job.status is not JobStatus.RUNNING:
            return  # committed suspend: nothing left to schedule
        speed = min(self._state.cpu_of(job.job_id), job.max_speed)
        if speed <= EPSILON:
            self._speeds.pop(job.job_id, None)
            self._run_since.pop(job.job_id, None)
            self._cancel_progress(job.job_id)
            return
        start = now + delays.get(job.job_id, 0.0)
        self._speeds[job.job_id] = speed
        self._run_since[job.job_id] = start
        self._schedule_progress(job, start, events)

    def _claim_destination(self, pending: PendingAction, job: Job) -> None:
        """Move the instance from its fallback to the action's destination
        in the live state.

        On capacity loss (the slot was given away mid-backoff, or the
        destination node died) everything is rolled back and
        :class:`~repro.errors.ActionFailedError` is raised.
        """
        app_id = job.job_id
        state = self._state
        for node in sorted(pending.prior_nodes):
            have = state.instances(app_id).get(node, 0)
            if have:
                state.remove(app_id, node, min(have, pending.prior_nodes[node]))
        placed = []
        try:
            for node in sorted(pending.dest_nodes):
                count = pending.dest_nodes[node]
                if count <= 0:
                    continue
                if not self._cluster.node(node).available:
                    raise CapacityError(f"destination node {node} is down")
                state.place(app_id, node, pending.memory_mb, count)
                placed.append((node, count))
        except (CapacityError, PlacementError) as exc:
            for node, count in placed:
                state.remove(app_id, node, count)
            # Re-place the fallback we just released; it must fit because
            # we freed exactly those slots a moment ago.
            for node in sorted(pending.prior_nodes):
                count = pending.prior_nodes[node]
                if count > 0:
                    state.place(app_id, node, pending.memory_mb, count)
            for node in sorted(pending.prior_cpu):
                cpu = pending.prior_cpu[node]
                if cpu > EPSILON:
                    grant = min(
                        cpu,
                        state.cpu_available(node) + state.cpu_on(app_id, node),
                    )
                    state.set_cpu(app_id, node, grant)
            raise ActionFailedError(
                pending.action_name, app_id, pending.target_node, str(exc)
            ) from exc
        for node in sorted(pending.dest_cpu):
            cpu = pending.dest_cpu[node]
            if cpu <= EPSILON:
                continue
            grant = min(cpu, state.cpu_available(node) + state.cpu_on(app_id, node))
            state.set_cpu(app_id, node, grant)

    def _destination_lost(
        self,
        pending: PendingAction,
        now: float,
        events: EventQueue,
        reason: str,
    ) -> None:
        """An attempt sampled OK but its destination could not actually be
        claimed (capacity gone, node down): treat it as one more failure."""
        directive = self._reconciler.force_failure(pending, now)
        self._emit_fault(
            TraceEventKind.ACTION_FAILED, pending, now,
            reason=f"destination-lost: {reason}",
        )
        self._dispatch_followup(pending, directive, now, events)

    def _stall_timed_out(
        self, pending: PendingAction, now: float, events: EventQueue
    ) -> None:
        """A stalled action exceeded the timeout: release the destination,
        put the instance back, and retry or abandon."""
        rec = self._reconciler
        if rec is None or rec.pending.get(pending.app_id) is not pending:
            return  # superseded by a newer control cycle
        pending.event_handle = None
        pending.holding = False
        job = (
            self._queue.job(pending.app_id)
            if pending.app_id in self._queue else None
        )
        if job is None or job.status is not pending.prior_status:
            rec.supersede(pending, now)
            return
        directive = rec.on_stall_timeout(pending, now)
        self._emit_fault(
            TraceEventKind.ACTION_FAILED, pending, now, reason="stall-timeout"
        )
        reverted = self._revert_in(self._state, job, pending, now)
        if reverted and job.status is JobStatus.RUNNING:
            # Resume execution on the fallback nodes while waiting.
            speed = min(self._state.cpu_of(job.job_id), job.max_speed)
            if speed > EPSILON:
                self._speeds[job.job_id] = speed
                self._run_since[job.job_id] = now
                self._schedule_progress(job, now, events)
        self._dispatch_followup(pending, directive, now, events)

    def _resolve_in_flight(self, now: float) -> None:
        """A new control cycle starts: cancel every pending retry/stall
        and settle their resources so the policy plans from the actual
        placement (in-flight actions are *superseded*, not failed)."""
        rec = self._reconciler
        if rec is None or not rec.pending:
            return
        for pending in list(rec.pending.values()):
            if pending.event_handle is not None:
                pending.event_handle.cancel()
                pending.event_handle = None
            if pending.holding:
                pending.holding = False
                job = (
                    self._queue.job(pending.app_id)
                    if pending.app_id in self._queue else None
                )
                if job is not None and job.status is pending.prior_status:
                    self._revert_in(self._state, job, pending, now)
            rec.supersede(pending, now)

    def _emit_fault(
        self,
        kind: TraceEventKind,
        pending: PendingAction,
        now: float,
        **detail: object,
    ) -> None:
        if self.trace is None:
            return
        self.trace.emit(
            now, kind, pending.app_id,
            action=pending.action_name,
            attempt=pending.attempts,
            node=pending.target_node,
            **detail,
        )

    # ------------------------------------------------------------------
    # Live SLO watchdog (opt-in; see SimulationConfig.alerts)
    # ------------------------------------------------------------------
    def _observe_cycle(
        self, effective: PlacementState, now: float
    ) -> CycleObservation:
        """Build the watchdog's view of the cycle just recorded.

        Pure read-only derivation from state the control loop already
        maintains — it mutates nothing the simulation consults, so
        enabling alerting cannot perturb results.
        """
        sample = self.metrics.cycles[-1]
        completions = self.metrics.completions
        new_completions = completions[self._alert_completions_seen:]
        self._alert_completions_seen = len(completions)

        waiting = self._queue.not_started() + self._queue.suspended()
        ages = [max(0.0, now - job.submit_time) for job in waiting]
        slacks = [
            job.completion_goal
            - now
            - job.remaining_work / max(job.max_speed, EPSILON)
            for job in waiting
        ]

        moves: Dict[str, int] = {}
        prev_moves = self._alert_prev_moves
        current_moves: Dict[str, int] = {}
        for job in self._queue.incomplete():
            total = job.suspend_count + job.resume_count + job.migration_count
            current_moves[job.job_id] = total
            delta = total - prev_moves.get(job.job_id, 0)
            if delta > 0:
                moves[job.job_id] = delta
        self._alert_prev_moves = current_moves

        utilization: Dict[str, float] = {}
        below_goal: Dict[str, list] = {}
        for node in self._cluster.nodes:
            if not node.available:
                continue
            capacity = node.cpu_capacity
            if capacity <= EPSILON:
                continue
            utilization[node.name] = 1.0 - effective.cpu_available(node.name) / capacity
        for app_id, utility in sample.txn_utilities.items():
            if utility < 0.0:
                for node_name in effective.nodes_of(app_id):
                    below_goal.setdefault(node_name, []).append(app_id)

        faults = self.metrics.faults
        attempts = sum(faults.attempts.values())
        stalls = sum(faults.stalls.values())
        obs = CycleObservation(
            time=now,
            cycle=len(self.metrics.cycles) - 1,
            txn_utilities=dict(sample.txn_utilities),
            completions_met=[c.met_deadline for c in new_completions],
            queued_ages=ages,
            queued_slacks=slacks,
            app_moves=moves,
            node_utilization=utilization,
            node_below_goal_txn=below_goal,
            action_attempts=attempts - self._alert_prev_attempts,
            action_stalls=stalls - self._alert_prev_stalls,
        )
        self._alert_prev_attempts = attempts
        self._alert_prev_stalls = stalls
        return obs

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_cycle(
        self,
        new_state: PlacementState,
        now: float,
        changes: int,
        decision_seconds: float,
        churn_instances: int = 0,
        migration_distance_mb: float = 0.0,
    ) -> None:
        incomplete = self._queue.incomplete()
        batch_alloc = sum(
            min(new_state.cpu_of(j.job_id), j.max_speed) for j in incomplete
        )
        if incomplete:
            hypo = self._batch_model.hypothetical(now).average_utility(batch_alloc)
        else:
            hypo = float("nan")
        txn_utilities: Dict[str, float] = {}
        txn_allocations: Dict[str, float] = {}
        for app in self._txn_apps:
            allocated = new_state.cpu_of(app.app_id)
            txn_allocations[app.app_id] = allocated
            txn_utilities[app.app_id] = app.rpf_at(now).utility(allocated)
        running = sum(1 for j in incomplete if j.status is JobStatus.RUNNING)
        self.metrics.record_cycle(
            CycleSample(
                time=now,
                batch_hypothetical_utility=hypo,
                batch_allocation_mhz=batch_alloc,
                txn_utilities=txn_utilities,
                txn_allocations_mhz=txn_allocations,
                running_jobs=running,
                queued_jobs=len(incomplete) - running,
                placement_changes=changes,
                decision_seconds=decision_seconds,
                churn_instances=churn_instances,
                migration_distance_mb=migration_distance_mb,
            )
        )
