"""The mixed-workload cluster simulator.

Drives a :class:`~repro.sim.policies.PlacementPolicy` over a virtualized
cluster on a fixed control cycle ``T`` (§3.1), exactly as the paper's
evaluation does:

* **arrivals**: jobs are submitted at their scheduled times and wait in
  the queue until the next control cycle considers them;
* **control cycles**: at every multiple of ``T`` the policy computes a
  new placement; the diff against the running placement is translated
  into VM control actions (boot / suspend / resume / migrate), whose
  costs — the paper's measured linear-in-footprint model — delay the
  affected job's execution within the cycle;
* **execution**: between control points allocations are constant; placed
  jobs progress at their allocated speed; completions are scheduled as
  exact-time events (capacity freed mid-cycle stays idle until the next
  control point, matching the control-cycle granularity of the real
  system);
* **metrics**: every cycle records the series the paper plots (average
  hypothetical relative performance, transactional relative performance,
  per-workload allocations, placement changes), and every completion
  records the job-level outcome (deadline distance, relative performance
  at completion time).
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.batch.job import Job, JobStatus
from repro.batch.model import BatchWorkloadModel
from repro.batch.queue import JobQueue
from repro.cluster import Cluster
from repro.core.placement import PlacementState
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import (
    EventQueue,
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_CYCLE,
)
from repro.sim.metrics import CycleSample, MetricsRecorder
from repro.sim.policies import PlacementPolicy
from repro.sim.trace import SimulationTrace, TraceEventKind
from repro.txn.application import TransactionalApp
from repro.units import EPSILON
from repro.virt.costs import PAPER_COST_MODEL, VirtualizationCostModel


@dataclass
class SimulationConfig:
    """Simulator parameters.

    Attributes
    ----------
    cycle_length:
        Control cycle period ``T`` (s).
    max_time:
        Hard stop; ``None`` runs until the batch workload drains.
    cost_model:
        VM action cost model (the paper's measured model by default;
        Experiment Two uses :data:`~repro.virt.costs.FREE_COST_MODEL`).
    prune_completed:
        Drop completed jobs from the queue each cycle to keep the
        controller's working set small (metrics keep their own records).
    failures:
        Injected node outages (failure-injection extension).
    """

    cycle_length: float = 600.0
    max_time: Optional[float] = None
    cost_model: VirtualizationCostModel = field(default_factory=lambda: PAPER_COST_MODEL)
    prune_completed: bool = True
    failures: Sequence["NodeFailure"] = ()

    def __post_init__(self) -> None:
        if self.cycle_length <= 0:
            raise ConfigurationError(
                f"cycle length must be positive, got {self.cycle_length}"
            )
        if self.max_time is not None and self.max_time <= 0:
            raise ConfigurationError(f"max time must be positive, got {self.max_time}")
        self.failures = tuple(self.failures)


@dataclass(frozen=True)
class NodeFailure:
    """One injected node outage.

    ``lose_progress`` models an abrupt crash — the VM state is gone and
    affected jobs restart from zero; ``False`` models a graceful drain —
    jobs are suspended with progress intact and resumable elsewhere.
    ``duration`` of ``inf`` keeps the node down for the rest of the run.
    """

    node: str
    fail_time: float
    duration: float = float("inf")
    lose_progress: bool = True

    def __post_init__(self) -> None:
        if self.fail_time < 0:
            raise ConfigurationError(
                f"fail time must be >= 0, got {self.fail_time}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )


# Event payloads --------------------------------------------------------
_ARRIVAL = "arrival"
_CYCLE = "cycle"
_COMPLETION = "completion"
_STAGE = "stage"
_FAIL = "fail"
_RESTORE = "restore"


class MixedWorkloadSimulator:
    """Simulates one policy over one workload on one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        policy: PlacementPolicy,
        queue: JobQueue,
        arrivals: Iterable[Job],
        txn_apps: Sequence[TransactionalApp] = (),
        batch_model: Optional[BatchWorkloadModel] = None,
        config: Optional[SimulationConfig] = None,
        trace: Optional[SimulationTrace] = None,
    ) -> None:
        self._cluster = cluster
        self._policy = policy
        self._queue = queue
        self._arrivals: Iterator[Job] = iter(arrivals)
        self._txn_apps = list(txn_apps)
        self._batch_model = batch_model or BatchWorkloadModel(queue)
        self._config = config or SimulationConfig()

        self.metrics = MetricsRecorder()
        self.trace = trace
        self._state = PlacementState(cluster)
        #: Per running job: (allocated speed MHz, execution start time).
        self._speeds: Dict[str, float] = {}
        self._run_since: Dict[str, float] = {}
        self._pending_arrival: Optional[Job] = None
        self._arrivals_done = False
        self._cycle_end = 0.0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def state(self) -> PlacementState:
        """The placement currently in effect."""
        return self._state

    @property
    def config(self) -> SimulationConfig:
        return self._config

    def run(self) -> MetricsRecorder:
        """Run to completion and return the metrics recorder."""
        events = EventQueue()
        self._schedule_next_arrival(events, 0.0)
        for failure in self._config.failures:
            if failure.node not in self._cluster:
                raise SimulationError(f"failure targets unknown node {failure.node!r}")
            events.schedule(
                failure.fail_time, (_FAIL, failure), priority=PRIORITY_ARRIVAL
            )
            if failure.duration != float("inf"):
                events.schedule(
                    failure.fail_time + failure.duration,
                    (_RESTORE, failure.node),
                    priority=PRIORITY_ARRIVAL,
                )
        events.schedule(0.0, (_CYCLE, None), priority=PRIORITY_CYCLE)

        while events:
            now, (kind, payload) = events.pop()
            if self._config.max_time is not None and now > self._config.max_time + EPSILON:
                break
            if kind == _ARRIVAL:
                self._queue.submit(payload)
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.ARRIVAL, payload.job_id,
                        goal=round(payload.completion_goal, 1),
                    )
                self._schedule_next_arrival(events, now)
            elif kind == _COMPLETION:
                self._complete_job(payload, now)
            elif kind == _STAGE:
                self._cross_stage_boundary(payload, now, events)
            elif kind == _FAIL:
                self._fail_node(payload, now)
            elif kind == _RESTORE:
                self._restore_node(payload, now)
            elif kind == _CYCLE:
                self._control_cycle(now, events)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")
        return self.metrics

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _schedule_next_arrival(self, events: EventQueue, now: float) -> None:
        job = next(self._arrivals, None)
        if job is None:
            self._arrivals_done = True
            return
        if job.submit_time < now - EPSILON:
            raise SimulationError(
                f"arrival stream not sorted: {job.job_id} at {job.submit_time} < {now}"
            )
        events.schedule(job.submit_time, (_ARRIVAL, job), priority=PRIORITY_ARRIVAL)

    def _complete_job(self, job_id: str, now: float) -> None:
        job = self._queue.job(job_id)
        if job.status is not JobStatus.RUNNING:
            return  # stale event that escaped cancellation
        self._advance_job(job, now)
        # Snap exact completion: floating residue below a millicycle.
        job.cpu_consumed = job.profile.total_work
        job.status = JobStatus.COMPLETED
        job.completion_time = now
        self._speeds.pop(job_id, None)
        self._run_since.pop(job_id, None)
        self.metrics.record_completion(job)
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.COMPLETION, job_id,
                met=job.met_deadline(),
                distance=round(job.deadline_distance(), 1),
            )

    def _advance_job(self, job: Job, now: float) -> None:
        """Credit work done since the job last ran."""
        speed = self._speeds.get(job.job_id)
        if speed is None:
            return
        since = self._run_since.get(job.job_id, now)
        dt = max(0.0, now - since)
        if dt > 0:
            job.advance(speed * dt)
            self._run_since[job.job_id] = now

    def _fail_node(self, failure: NodeFailure, now: float) -> None:
        """Take a node down: evict its placements and requeue its jobs.

        Evictions happen *before* the node is marked unavailable — the
        capacity bookkeeping must still see the node's real capacity
        while allocations are being released.
        """
        node = self._cluster.node(failure.node)
        for app_id in list(self._state.apps_on(failure.node)):
            count = self._state.instances(app_id).get(failure.node, 0)
            if count:
                self._state.remove(app_id, failure.node, count)
            if app_id not in self._queue:
                continue  # transactional instance: re-placed next cycle
            job = self._queue.job(app_id)
            if not job.is_incomplete:
                continue
            still_placed = bool(self._state.nodes_of(app_id))
            if still_placed:
                # A parallel job survives on its remaining instances at a
                # proportionally reduced speed until the next cycle.
                self._advance_job(job, now)
                remaining_speed = min(
                    self._state.cpu_of(app_id), job.max_speed
                )
                if remaining_speed > EPSILON:
                    self._speeds[app_id] = remaining_speed
                    self._run_since[app_id] = now
                else:
                    self._speeds.pop(app_id, None)
                continue
            if job.status is JobStatus.RUNNING:
                self._advance_job(job, now)
                self._speeds.pop(app_id, None)
                self._run_since.pop(app_id, None)
                if failure.lose_progress:
                    job.cpu_consumed = 0.0
                    job.status = JobStatus.NOT_STARTED
                    job.node = None
                else:
                    job.status = JobStatus.SUSPENDED
            elif job.status is JobStatus.SUSPENDED and failure.lose_progress:
                if job.node == failure.node:
                    job.cpu_consumed = 0.0
                    job.status = JobStatus.NOT_STARTED
                    job.node = None
        node.available = False
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.SUSPEND, failure.node,
                event="node-failure", lose_progress=failure.lose_progress,
            )

    def _restore_node(self, node_name: str, now: float) -> None:
        self._cluster.node(node_name).available = True
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.RESUME, node_name, event="node-restore"
            )

    def _schedule_progress(self, job: Job, start: float, events: EventQueue) -> None:
        """Schedule the job's next in-cycle progress event.

        Within a control cycle allocations are constant, but a job's
        *speed cap* changes at stage boundaries (§4.1: each stage has its
        own ``ω^max``).  The next event is whichever comes first of the
        stage boundary and the completion, if it lands inside the cycle.
        """
        speed = self._speeds.get(job.job_id)
        if speed is None or speed <= EPSILON:
            return
        if job.profile.is_last_stage(job.cpu_consumed):
            completion = start + job.remaining_work / speed
            if completion <= self._cycle_end + EPSILON:
                events.schedule(
                    completion, (_COMPLETION, job.job_id),
                    priority=PRIORITY_COMPLETION,
                )
            return
        boundary = start + job.profile.work_to_stage_end(job.cpu_consumed) / speed
        if boundary <= self._cycle_end + EPSILON:
            events.schedule(
                boundary, (_STAGE, job.job_id), priority=PRIORITY_COMPLETION
            )

    def _cross_stage_boundary(
        self, job_id: str, now: float, events: EventQueue
    ) -> None:
        """The job finished a stage mid-cycle: re-apply the new stage's
        speed cap (the allocation itself only changes at control points)
        and schedule the next progress event."""
        job = self._queue.job(job_id)
        if job.status is not JobStatus.RUNNING:
            return  # reconfigured away before the boundary
        self._advance_job(job, now)
        allocated = self._state.cpu_of(job.job_id)
        speed = min(allocated, job.max_speed)
        if speed <= EPSILON:
            self._speeds.pop(job.job_id, None)
            return
        self._speeds[job.job_id] = speed
        self._run_since[job.job_id] = now
        self._schedule_progress(job, now, events)

    def _control_cycle(self, now: float, events: EventQueue) -> None:
        # 1. Bring all running jobs' progress up to date.
        for job in self._queue.running():
            self._advance_job(job, now)

        # 2. Ask the policy for the next placement.
        t0 = _wallclock.perf_counter()
        new_state = self._policy.decide(self._state, now)
        decision_seconds = _wallclock.perf_counter() - t0

        # 3. Apply the placement diff as VM control actions.
        changes, delays = self._apply_placement(new_state, now)

        # 4. Refresh execution speeds and schedule in-cycle progress
        #    events (stage boundaries and completions).
        self._cycle_end = now + self._config.cycle_length
        self._speeds = {}
        self._state = new_state
        for job in self._queue.running():
            allocated = new_state.cpu_of(job.job_id)
            speed = min(allocated, job.max_speed)
            if speed <= EPSILON:
                continue
            self._speeds[job.job_id] = speed
            start = now + delays.get(job.job_id, 0.0)
            self._run_since[job.job_id] = start
            self._schedule_progress(job, start, events)

        # 5. Record the cycle sample.
        self._record_cycle(new_state, now, changes, decision_seconds)
        if self.trace is not None:
            self.trace.emit(
                now, TraceEventKind.CYCLE, "controller",
                changes=changes,
                running=len(self._speeds),
                decision_ms=round(decision_seconds * 1e3, 2),
            )

        # 6. Book-keeping and the next cycle.
        if self._config.prune_completed:
            self._queue.prune_completed()
        more_batch = bool(self._queue.incomplete()) or not self._arrivals_done
        next_cycle = now + self._config.cycle_length
        past_horizon = (
            self._config.max_time is not None
            and next_cycle > self._config.max_time + EPSILON
        )
        if more_batch and not past_horizon:
            events.schedule(next_cycle, (_CYCLE, None), priority=PRIORITY_CYCLE)

    # ------------------------------------------------------------------
    # Placement application
    # ------------------------------------------------------------------
    def _apply_placement(
        self, new_state: PlacementState, now: float
    ) -> Tuple[int, Dict[str, float]]:
        """Classify per-job placement changes and update job state.

        Returns ``(change_count, per-job execution delays)``.  Change
        semantics (and Figure 4's counting):

        * queued job placed            -> BOOT (not a "change")
        * running job unplaced         -> SUSPEND (1 change)
        * suspended job, same node     -> RESUME (1 change)
        * suspended job, other node    -> migrate + resume (1 change)
        * running job, other node      -> live MIGRATE (1 change)
        """
        costs = self._config.cost_model
        changes = 0
        delays: Dict[str, float] = {}
        for job in self._queue.incomplete():
            old_set = set(self._state.nodes_of(job.job_id))
            new_set = set(new_state.nodes_of(job.job_id))

            if not new_set:
                if job.status is JobStatus.RUNNING:
                    job.status = JobStatus.SUSPENDED
                    job.suspend_count += 1
                    changes += 1
                    self._speeds.pop(job.job_id, None)
                    self._run_since.pop(job.job_id, None)
                    # job.node keeps the suspension node for resume/migrate
                    # classification next time it is placed.
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.SUSPEND, job.job_id,
                            node=job.node,
                        )
                continue

            primary = sorted(new_set)[0]
            if job.status is JobStatus.NOT_STARTED:
                job.status = JobStatus.RUNNING
                job.start_time = now
                job.node = primary
                delays[job.job_id] = costs.boot_cost(job.memory_mb)
                if self.trace is not None:
                    self.trace.emit(
                        now, TraceEventKind.BOOT, job.job_id, node=primary,
                        delay=round(delays[job.job_id], 2),
                    )
            elif job.status is JobStatus.SUSPENDED:
                if job.node in new_set:
                    job.resume_count += 1
                    delays[job.job_id] = costs.resume_cost(job.memory_mb)
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.RESUME, job.job_id,
                            node=job.node,
                            delay=round(delays[job.job_id], 2),
                        )
                else:
                    job.migration_count += 1
                    delays[job.job_id] = costs.migrate_cost(
                        job.memory_mb
                    ) + costs.resume_cost(job.memory_mb)
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.MIGRATE, job.job_id,
                            source=job.node, node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                job.status = JobStatus.RUNNING
                job.node = primary if job.node not in new_set else job.node
                changes += 1
            elif job.status is JobStatus.RUNNING:
                if old_set and old_set - new_set:
                    # Losing nodes means (at least part of) the job moved:
                    # a live migration.  Pure growth (new instances of a
                    # parallel job booting on extra nodes) is dispatch,
                    # not reconfiguration churn.
                    job.migration_count += 1
                    delays[job.job_id] = costs.migrate_cost(job.memory_mb)
                    changes += 1
                    if self.trace is not None:
                        self.trace.emit(
                            now, TraceEventKind.MIGRATE, job.job_id,
                            source=sorted(old_set)[0], node=primary,
                            delay=round(delays[job.job_id], 2),
                        )
                if job.node not in new_set:
                    job.node = primary
        return changes, delays

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_cycle(
        self,
        new_state: PlacementState,
        now: float,
        changes: int,
        decision_seconds: float,
    ) -> None:
        incomplete = self._queue.incomplete()
        batch_alloc = sum(
            min(new_state.cpu_of(j.job_id), j.max_speed) for j in incomplete
        )
        if incomplete:
            hypo = self._batch_model.hypothetical(now).average_utility(batch_alloc)
        else:
            hypo = float("nan")
        txn_utilities: Dict[str, float] = {}
        txn_allocations: Dict[str, float] = {}
        for app in self._txn_apps:
            allocated = new_state.cpu_of(app.app_id)
            txn_allocations[app.app_id] = allocated
            txn_utilities[app.app_id] = app.rpf_at(now).utility(allocated)
        running = sum(1 for j in incomplete if j.status is JobStatus.RUNNING)
        self.metrics.record_cycle(
            CycleSample(
                time=now,
                batch_hypothetical_utility=hypo,
                batch_allocation_mhz=batch_alloc,
                txn_utilities=txn_utilities,
                txn_allocations_mhz=txn_allocations,
                running_jobs=running,
                queued_jobs=len(incomplete) - running,
                placement_changes=changes,
                decision_seconds=decision_seconds,
            )
        )
