"""Discrete-event cluster simulator.

Re-implements the simulator the paper's evaluation runs on (§5): a
virtualized cluster in which VM control mechanisms (boot, suspend,
resume, live migration — with the measured linear cost model) configure
application placement, batch jobs progress at their allocated speeds,
transactional workloads follow the queuing performance model, and the
management policy runs on a fixed control cycle.
"""

from repro.sim.engine import EventQueue, ScheduledEvent
from repro.sim.metrics import (
    ActionFaultStats,
    MetricsRecorder,
    CycleSample,
    JobCompletionRecord,
    sla_summary,
)
from repro.policies import (
    PlacementPolicy,
    APCPolicy,
    FCFSPolicy,
    EDFPolicy,
    LRPFPolicy,
    PartitionedPolicy,
    ScriptedPolicy,
)
from repro.sim.reconcile import Decision, Directive, PendingAction, Reconciler
from repro.sim.simulator import MixedWorkloadSimulator, NodeFailure, SimulationConfig
from repro.sim.snapshot import SNAPSHOT_SCHEMA_VERSION
from repro.sim.trace import SimulationTrace, TraceEvent, TraceEventKind
from repro.sim.monitoring import (
    ActuatorHealthMonitor,
    ActuatorHealthReport,
    MonitoredTransactionalModel,
    MonitoringPolicyWrapper,
    MonitoringReport,
)
from repro.sim.export import (
    SCHEMA_VERSION as EXPORT_SCHEMA_VERSION,
    completions_to_csv,
    cycles_to_csv,
    faults_to_csv,
    load_metrics_json,
    metrics_to_json,
)

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "ActionFaultStats",
    "MetricsRecorder",
    "CycleSample",
    "JobCompletionRecord",
    "sla_summary",
    "PlacementPolicy",
    "APCPolicy",
    "FCFSPolicy",
    "EDFPolicy",
    "LRPFPolicy",
    "PartitionedPolicy",
    "ScriptedPolicy",
    "Decision",
    "Directive",
    "PendingAction",
    "Reconciler",
    "MixedWorkloadSimulator",
    "NodeFailure",
    "SimulationConfig",
    "SNAPSHOT_SCHEMA_VERSION",
    "SimulationTrace",
    "TraceEvent",
    "TraceEventKind",
    "ActuatorHealthMonitor",
    "ActuatorHealthReport",
    "MonitoredTransactionalModel",
    "MonitoringPolicyWrapper",
    "MonitoringReport",
    "EXPORT_SCHEMA_VERSION",
    "completions_to_csv",
    "cycles_to_csv",
    "faults_to_csv",
    "load_metrics_json",
    "metrics_to_json",
]
