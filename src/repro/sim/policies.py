"""Deprecated alias for :mod:`repro.policies` (kept for old imports).

The policies moved into their own package in the policy-API redesign;
``repro.sim.policies`` re-exports the old names so existing code keeps
working, at the cost of a one-shot :class:`DeprecationWarning`.  New code
should import from :mod:`repro.policies`.
"""

from __future__ import annotations

from repro._compat import warn_once
from repro.policies.base import (
    PlacementPolicy,
    build_batch_state,
    current_assignment,
)
from repro.policies.builtin import (
    APCPolicy,
    EDFPolicy,
    FCFSPolicy,
    LRPFPolicy,
    PartitionedPolicy,
    ScriptedPolicy,
)

# Pre-move private helpers, aliased for callers that reached into them.
_current_assignment = current_assignment
_build_batch_state = build_batch_state

warn_once(
    "repro.sim.policies",
    "repro.sim.policies is deprecated; import placement policies from "
    "repro.policies instead",
)

__all__ = [
    "PlacementPolicy",
    "ScriptedPolicy",
    "FCFSPolicy",
    "EDFPolicy",
    "LRPFPolicy",
    "APCPolicy",
    "PartitionedPolicy",
]
