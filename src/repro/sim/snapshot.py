"""Snapshot schema helpers for crash-safe simulations.

A simulator snapshot is a plain JSON document (see
``MixedWorkloadSimulator.snapshot``) carrying a ``schema_version`` so a
checkpoint written by one version of the code is never silently
misinterpreted by another.  This module centralizes the version constant
and the defensive accessors every restore path uses: a truncated or
malformed checkpoint must fail with a
:class:`~repro.errors.CheckpointError` that says what was wrong, never a
bare ``KeyError``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import CheckpointError

#: Version written into every snapshot / checkpoint produced by this
#: code.  Bump it whenever the layout changes incompatibly; restore
#: refuses anything else.
SNAPSHOT_SCHEMA_VERSION = 1


def require(data: Dict[str, Any], key: str, context: str) -> Any:
    """``data[key]`` or a :class:`CheckpointError` naming the gap."""
    if not isinstance(data, dict):
        raise CheckpointError(
            f"{context}: expected a JSON object, got {type(data).__name__}"
        )
    try:
        return data[key]
    except KeyError:
        raise CheckpointError(
            f"{context}: missing {key!r} — checkpoint truncated or malformed"
        ) from None


def check_version(data: Dict[str, Any], context: str) -> None:
    """Verify ``data`` carries the supported ``schema_version``."""
    version = require(data, "schema_version", context)
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{context}: schema version {version!r} is not supported "
            f"(this code reads version {SNAPSHOT_SCHEMA_VERSION})"
        )


__all__ = ["SNAPSHOT_SCHEMA_VERSION", "check_version", "require"]
