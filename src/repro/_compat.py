"""Backward-compatibility helpers for the public-API transition.

The stable facade (:mod:`repro.api`) normalizes every configuration
constructor to keyword-only arguments.  Call sites that still pass
positionals keep working for one deprecation cycle through
:func:`keyword_only`, which maps positionals onto field names and emits a
single :class:`DeprecationWarning` per class.
"""

from __future__ import annotations

import dataclasses
import functools
import warnings
from typing import Type, TypeVar

T = TypeVar("T")

#: Classes that have already warned about positional construction this
#: process; tests reset via :func:`reset_deprecation_warnings`.
_WARNED: set = set()


def reset_deprecation_warnings() -> None:
    """Forget which classes have warned (test isolation hook)."""
    _WARNED.clear()


def warn_once(key: object, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``message`` as a :class:`DeprecationWarning` once per ``key``.

    Shares the one-shot registry used by :func:`keyword_only`, so
    :func:`reset_deprecation_warnings` re-arms these warnings too.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def keyword_only(cls: Type[T]) -> Type[T]:
    """Make a dataclass's ``__init__`` keyword-only, tolerating
    positional calls for one deprecation cycle.

    Positional arguments are mapped onto the dataclass's fields in
    declaration order and a :class:`DeprecationWarning` is emitted —
    once per class, not per call — before delegating to the generated
    initializer.
    """
    original_init = cls.__init__
    field_names = [f.name for f in dataclasses.fields(cls) if f.init]

    @functools.wraps(original_init)
    def __init__(self, *args, **kwargs):
        if args:
            if len(args) > len(field_names):
                raise TypeError(
                    f"{cls.__name__}() takes at most {len(field_names)} "
                    f"arguments ({len(args)} given)"
                )
            if cls not in _WARNED:
                _WARNED.add(cls)
                warnings.warn(
                    f"positional arguments to {cls.__name__}() are "
                    f"deprecated; pass fields by keyword",
                    DeprecationWarning,
                    stacklevel=2,
                )
            for name, value in zip(field_names, args):
                if name in kwargs:
                    raise TypeError(
                        f"{cls.__name__}() got multiple values for "
                        f"argument {name!r}"
                    )
                kwargs[name] = value
        original_init(self, **kwargs)

    cls.__init__ = __init__
    return cls
