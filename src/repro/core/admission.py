"""Pluggable admission ordering for the controller's greedy passes.

The APC's cheap pre-search pass places queued applications into free
capacity in *lowest-relative-performance-first* order (the paper's LRPF
ordering, §1), and the search's inner fill loop visits applications the
same way.  :class:`AdmissionStrategy` makes that ordering an extension
point: the controller asks the strategy to rank the eligible
applications, then runs its (scalar, indexed, or vectorized) placement
mechanics unchanged — so a strategy swaps the *queue discipline* without
forking the placement machinery, and the default strategy reproduces the
historical behavior byte for byte.

Strategies are keyword-only dataclasses registered by name
(:func:`register_admission`) with JSON-lossless ``to_dict``/``from_dict``,
so scenarios can select one declaratively
(``policy_params={"admission": "fcfs"}``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Type, Union

from repro._compat import keyword_only
from repro.core.loadbalance import AllocatableApp
from repro.errors import ConfigurationError

#: Strategy name -> class, filled by :func:`register_admission`.
ADMISSIONS: Dict[str, Type["AdmissionStrategy"]] = {}


def register_admission(
    cls: Type["AdmissionStrategy"],
) -> Type["AdmissionStrategy"]:
    """Class decorator: make a strategy resolvable by name."""
    ADMISSIONS[cls.name] = cls
    return cls


class AdmissionStrategy:
    """Orders the applications the greedy passes try to place.

    :meth:`order` receives the eligible application ids (already
    filtered to unplaced-and-known candidates, in candidate-list order —
    i.e. submission order for batch jobs), the per-application specs,
    and the incumbent placement's predicted utilities.  It returns the
    ids in the order placement should be attempted.  The ordering must
    be deterministic; the controller's placement mechanics (first-fit
    into free capacity, divisible-app flooding, host tie-breaks) are not
    part of the strategy.
    """

    #: Registry key; subclasses override.
    name = "admission"

    def order(
        self,
        eligible: Sequence[str],
        specs: Mapping[str, AllocatableApp],
        utilities: Mapping[str, float],
    ) -> List[str]:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-serializable representation (round-trips through
        :meth:`from_dict`)."""
        out: Dict[str, object] = {"name": self.name}
        if dataclasses.is_dataclass(self):
            for f in dataclasses.fields(self):
                out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AdmissionStrategy":
        """Build a registered strategy from a plain dict (inverse of
        :meth:`to_dict`); unknown names and keys are rejected."""
        payload = dict(data)
        name = payload.pop("name", None)
        target = ADMISSIONS.get(name)  # type: ignore[arg-type]
        if target is None:
            raise ConfigurationError(
                f"unknown admission strategy {name!r}; expected one of "
                f"{sorted(ADMISSIONS)}"
            )
        known = {f.name for f in dataclasses.fields(target)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown {target.__name__} keys: {sorted(unknown)}"
            )
        return target(**payload)


AdmissionLike = Union[None, str, Mapping[str, object], "AdmissionStrategy"]


def resolve_admission(spec: AdmissionLike) -> "AdmissionStrategy":
    """Coerce ``None`` (the paper's LRPF default), a registry name, a
    config dict, or a strategy instance into a strategy."""
    if spec is None:
        return LRPFAdmission()
    if isinstance(spec, AdmissionStrategy):
        return spec
    if isinstance(spec, str):
        return AdmissionStrategy.from_dict({"name": spec})
    if isinstance(spec, Mapping):
        return AdmissionStrategy.from_dict(spec)
    raise ConfigurationError(
        f"cannot resolve an admission strategy from {type(spec).__name__}"
    )


@register_admission
@keyword_only
@dataclass
class LRPFAdmission(AdmissionStrategy):
    """The paper's ordering: lowest relative performance first.

    Applications are ranked by their current predicted utility — falling
    back to the RPF maximum for applications the incumbent prediction
    does not cover — ascending, so the neediest work is placed first.
    The sort is stable, so equal-utility applications keep candidate
    (submission) order; byte-identical to the controller's historical
    hardwired sort.
    """

    name = "lrpf"

    def order(
        self,
        eligible: Sequence[str],
        specs: Mapping[str, AllocatableApp],
        utilities: Mapping[str, float],
    ) -> List[str]:
        return sorted(
            eligible,
            key=lambda a: utilities.get(a, specs[a].rpf.max_utility),
        )


@register_admission
@keyword_only
@dataclass
class FCFSAdmission(AdmissionStrategy):
    """Arrival-order admission: place in candidate (submission) order.

    Drops the LRPF re-ranking — the greedy passes then behave like a
    first-come-first-served queue over free capacity.  ``reverse``
    flips to last-come-first-served (useful for adversarial tests of
    the ordering's effect).
    """

    name = "fcfs"

    reverse: bool = False

    def order(
        self,
        eligible: Sequence[str],
        specs: Mapping[str, AllocatableApp],
        utilities: Mapping[str, float],
    ) -> List[str]:
        ordered = list(eligible)
        if self.reverse:
            ordered.reverse()
        return ordered
