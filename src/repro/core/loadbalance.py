"""Load distribution for a fixed placement: progressive filling.

Given a placement matrix ``P`` (which instances sit on which nodes), the
controller must choose the load matrix ``L`` — how much CPU each instance
receives — to maximize the sorted vector of application relative
performance lexicographically (§3.2).  This module implements that inner
optimization by *progressive filling* on the relative-performance scale:

1. every placed application first receives its minimum speed
   (``ω^min`` per instance);
2. a common relative-performance level ``u`` is raised (binary search) as
   far as node CPU capacities allow, each application demanding
   ``ω_m(u)`` — the inverse of its RPF — clamped into its
   ``[min, max]`` speed range (an application already at its maximum
   utility simply demands its maximum useful speed, so it never blocks
   the level);
3. any remaining capacity is handed out in ascending-utility order:
   each application is individually raised as far as its own nodes'
   residual capacity permits (lexicographic refinement).

Applications enter the optimizer as :class:`AllocatableApp` — a resource
demand plus an RPF of the CPU allocation.  For batch jobs the RPF is the
per-job hypothetical function of §4.2 (the ``W`` matrix row: the average
speed the job must sustain from now on to reach a target relative
performance); for transactional applications it is the queuing-model RPF
of §3.3.  The coupling between jobs (shared future capacity) affects
*evaluation* of the resulting allocation, not the per-job demand curves,
so this optimizer stays workload-agnostic.

Distributing an application's aggregate target over its instances is a
transportation problem; we use a greedy scheme that is exact for
single-node applications (all batch jobs — they are singletons) and for
any number of divisible applications that do not compete with each other
on shared nodes (the experimental configurations).  With several divisible
applications overlapping on saturated nodes it is a heuristic, consistent
with the paper's overall heuristic approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import AppDemand, PlacementState
from repro.core.rpf import (
    NEGATIVE_INFINITY_UTILITY,
    RelativePerformanceFunction,
)
from repro.units import EPSILON, clamp

#: Binary-search iterations for utility levels.  48 halvings of the
#: [-50, 1] utility interval resolve levels to ~2e-13, far below any
#: physically meaningful difference.
_LEVEL_SEARCH_ITERATIONS = 48

#: Maximum refinement sweeps.  Each sweep either raises at least one
#: application or terminates, so this is a safety bound, not a tuning knob.
_MAX_REFINEMENT_SWEEPS = 64


@dataclass(frozen=True)
class AllocatableApp:
    """One application as seen by the load-distribution optimizer."""

    demand: AppDemand
    rpf: RelativePerformanceFunction

    @property
    def app_id(self) -> str:
        return self.demand.app_id


@dataclass(frozen=True)
class SpecArrays:
    """Column-oriented view of :class:`AllocatableApp` specs.

    One row per application, shared by the vectorized load distributor
    and the vectorized APC admission/frontier scoring.  Rows whose RPF is
    a parametric batch :class:`~repro.batch.rpf.JobAllocationRPF` carry
    its frozen fields (``is_job`` True); generic rows (transactional
    queuing-model RPFs) leave those columns zeroed and are handled by the
    scalar fallbacks.  Arrays are adopted without copying and must be
    treated as immutable.
    """

    ids: List[str]
    index: Mapping[str, int]
    memory: np.ndarray  # demand.memory_mb
    min_cpu: np.ndarray  # demand.min_cpu_mhz (per instance)
    max_per_instance: np.ndarray  # demand.max_cpu_per_instance_mhz (may be inf)
    max_instances: np.ndarray  # float; inf encodes "unbounded"
    divisible: np.ndarray  # bool
    is_job: np.ndarray  # bool: parametric JobAllocationRPF rows
    remaining: np.ndarray
    goal: np.ndarray
    relative_goal: np.ndarray
    now: np.ndarray
    max_speed: np.ndarray  # rpf aggregate speed ceiling
    u_max: np.ndarray  # rpf.max_utility

    @classmethod
    def from_specs(cls, specs: Mapping[str, AllocatableApp]) -> "SpecArrays":
        """Scalar fallback builder: extract columns from spec objects.

        Used for the (few) applications whose model does not provide
        arrays directly — e.g. transactional workloads.
        """
        from repro.batch.rpf import JobAllocationRPF

        ids = list(specs)
        n = len(ids)
        memory = np.zeros(n)
        min_cpu = np.zeros(n)
        max_pi = np.zeros(n)
        max_inst = np.zeros(n)
        divisible = np.zeros(n, dtype=bool)
        is_job = np.zeros(n, dtype=bool)
        remaining = np.zeros(n)
        goal = np.zeros(n)
        relative_goal = np.ones(n)
        now = np.zeros(n)
        max_speed = np.zeros(n)
        u_max = np.zeros(n)
        for i, app_id in enumerate(ids):
            spec = specs[app_id]
            demand = spec.demand
            memory[i] = demand.memory_mb
            min_cpu[i] = demand.min_cpu_mhz
            max_pi[i] = demand.max_cpu_per_instance_mhz
            max_inst[i] = (
                np.inf if demand.max_instances is None else demand.max_instances
            )
            divisible[i] = demand.divisible
            if isinstance(spec.rpf, JobAllocationRPF):
                rpf = spec.rpf
                is_job[i] = True
                remaining[i] = rpf.remaining_work
                goal[i] = rpf.goal
                relative_goal[i] = rpf.relative_goal
                now[i] = rpf.now
                max_speed[i] = rpf.max_speed
                u_max[i] = rpf.max_utility
        return cls(
            ids=ids, index={a: i for i, a in enumerate(ids)},
            memory=memory, min_cpu=min_cpu, max_per_instance=max_pi,
            max_instances=max_inst, divisible=divisible, is_job=is_job,
            remaining=remaining, goal=goal, relative_goal=relative_goal,
            now=now, max_speed=max_speed, u_max=u_max,
        )

    @classmethod
    def merge(cls, parts: Sequence["SpecArrays"]) -> "SpecArrays":
        """Concatenate per-model parts into one table."""
        if len(parts) == 1:
            return parts[0]
        ids: List[str] = []
        for part in parts:
            ids.extend(part.ids)
        cat = np.concatenate
        return cls(
            ids=ids, index={a: i for i, a in enumerate(ids)},
            memory=cat([p.memory for p in parts]),
            min_cpu=cat([p.min_cpu for p in parts]),
            max_per_instance=cat([p.max_per_instance for p in parts]),
            max_instances=cat([p.max_instances for p in parts]),
            divisible=cat([p.divisible for p in parts]),
            is_job=cat([p.is_job for p in parts]),
            remaining=cat([p.remaining for p in parts]),
            goal=cat([p.goal for p in parts]),
            relative_goal=cat([p.relative_goal for p in parts]),
            now=cat([p.now for p in parts]),
            max_speed=cat([p.max_speed for p in parts]),
            u_max=cat([p.u_max for p in parts]),
        )


@dataclass
class LoadDistributionResult:
    """Outcome of :func:`distribute_load`.

    Attributes
    ----------
    allocations:
        Total CPU (MHz) granted to each placed application.
    utilities:
        Relative performance at the granted allocation, per the
        application's own RPF.  (Batch job utilities are re-derived by the
        batch model during placement evaluation; these values are the
        per-app view used for ordering.)
    common_level:
        The highest common relative-performance level reached in phase 2.
    feasible:
        False when even the minimum speeds could not be satisfied;
        allocations are then best-effort.
    """

    allocations: Dict[str, float] = field(default_factory=dict)
    utilities: Dict[str, float] = field(default_factory=dict)
    common_level: float = NEGATIVE_INFINITY_UTILITY
    feasible: bool = True


def _aggregate_bounds(
    app: AllocatableApp, state: PlacementState
) -> Tuple[float, float]:
    """(min_total, max_total) CPU for the app given its instance count."""
    count = state.instance_count(app.app_id)
    min_total = app.demand.min_cpu_mhz * count
    max_per_instance = app.demand.max_cpu_per_instance_mhz
    if max_per_instance == float("inf"):
        max_total = float("inf")
    else:
        max_total = max_per_instance * count
    return min_total, max_total


def _target_at_level(
    app: AllocatableApp, state: PlacementState, level: float
) -> float:
    """CPU the app demands at relative-performance level ``level``.

    The inverse RPF, clamped into the app's feasible speed range.  An
    unreachable level (``required_cpu == inf``) clamps to the maximum
    useful speed: the app saturates rather than blocking the level.
    """
    min_total, max_total = _aggregate_bounds(app, state)
    required = app.rpf.required_cpu(level)
    if required == float("inf"):
        # The level is unreachable: the app demands its saturation
        # allocation (beyond which more CPU cannot improve it), bounded
        # by its speed ceiling.
        required = min(app.rpf.saturation_cpu, max_total)
    if max_total == float("inf"):
        # No speed ceiling: cap by what its nodes could ever provide.
        max_total = sum(
            state.cluster.node(n).cpu_capacity for n in state.nodes_of(app.app_id)
        )
        required = min(required, max_total)
    return clamp(required, min(min_total, max_total), max_total)


def _try_distribute(
    targets: Mapping[str, float],
    apps: Mapping[str, AllocatableApp],
    state: PlacementState,
) -> Optional[Dict[str, Dict[str, float]]]:
    """Distribute aggregate targets over instances; ``None`` if infeasible.

    Singleton (non-divisible) applications are handled first — they have
    no freedom — then divisible applications draw greedily from their
    nodes in descending residual order.
    """
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    per_node: Dict[str, Dict[str, float]] = {app_id: {} for app_id in targets}

    singletons = [a for a in targets if not apps[a].demand.divisible]
    divisible = [a for a in targets if apps[a].demand.divisible]

    for app_id in singletons:
        target = targets[app_id]
        if target <= EPSILON:
            continue
        nodes = state.nodes_of(app_id)
        remaining = target
        # A non-divisible app normally has a single instance; if it has
        # several (not used by the experiments), fill them in order.
        for node in nodes:
            count = state.instances(app_id).get(node, 0)
            cap = apps[app_id].demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
        if remaining > EPSILON:
            return None

    for app_id in divisible:
        target = targets[app_id]
        if target <= EPSILON:
            continue
        remaining = target
        instance_nodes = state.instances(app_id)
        # Most-residual-first keeps the greedy exact for a lone divisible
        # application and balances the router's view of instance speeds.
        for node in sorted(instance_nodes, key=lambda n: -residual[n]):
            count = instance_nodes[node]
            cap = apps[app_id].demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = per_node[app_id].get(node, 0.0) + take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
        if remaining > EPSILON:
            return None

    return per_node


class _VectorContext:
    """Per-``distribute_load`` invocation arrays for the vectorized path.

    Everything here is a function of (state, placed apps, spec tables)
    and stays fixed for the duration of one distribution — the level
    bisection re-uses it across all ``feasible()`` probes.
    """

    __slots__ = (
        "placed_ids", "caps", "min_total", "max_total", "saturation",
        "u_max", "vec_target", "scalar_rows", "remaining", "goal",
        "relative_goal", "now", "max_speed", "levels",
        "divisible_rows", "scalar_verdict", "node_names", "is_job_row",
    )

    @classmethod
    def build(
        cls,
        state: PlacementState,
        placed: Mapping[str, AllocatableApp],
        placed_ids: List[str],
        tables: SpecArrays,
    ) -> Optional["_VectorContext"]:
        index = tables.index
        rows = []
        for app_id in placed_ids:
            row = index.get(app_id)
            if row is None:
                # The tables do not cover every placed app; run scalar.
                return None
            rows.append(row)
        ctx = cls.__new__(cls)
        ctx.placed_ids = placed_ids
        row_arr = np.array(rows, dtype=np.intp)
        counts = np.array(
            [state.instance_count(a) for a in placed_ids], dtype=float
        )
        max_pi = tables.max_per_instance[row_arr]
        ctx.min_total = tables.min_cpu[row_arr] * counts
        # _aggregate_bounds: inf per-instance ceiling -> inf total.
        ctx.max_total = np.where(np.isinf(max_pi), np.inf, max_pi * counts)
        is_job = tables.is_job[row_arr]
        ctx.is_job_row = is_job
        ctx.remaining = tables.remaining[row_arr]
        ctx.goal = tables.goal[row_arr]
        ctx.relative_goal = tables.relative_goal[row_arr]
        ctx.now = tables.now[row_arr]
        ctx.max_speed = tables.max_speed[row_arr]
        ctx.u_max = tables.u_max[row_arr]
        ctx.saturation = np.where(
            ctx.remaining <= EPSILON, 0.0, ctx.max_speed
        )
        # Rows whose targets the array kernel can produce: parametric
        # batch RPFs with a finite speed ceiling.  Everything else gets
        # the scalar _target_at_level.
        ctx.vec_target = is_job & np.isfinite(max_pi)
        ctx.scalar_rows = [
            (pos, placed_ids[pos])
            for pos in np.flatnonzero(~ctx.vec_target).tolist()
        ]
        node_index = state.node_index
        ctx.node_names = list(node_index)
        ctx.caps = state.capacity_arrays()[0]

        # Bucket single-node non-divisible apps into "levels": the j-th
        # singleton on each node.  The scalar reference walks singletons
        # in placed order and nodes never interact across apps, so
        # draining level-by-level reproduces each node's sequential
        # residual chain bit for bit.  A multi-node singleton would break
        # the bucketing; fall back to the scalar verdict for the whole
        # call (vectorized targets are still used).
        per_node_seq: Dict[int, List[int]] = {}
        divisible_rows: List[Tuple[int, str, List[Tuple[str, int, float]]]] = []
        max_pi_list = max_pi.tolist()
        ctx.scalar_verdict = False
        for pos, app_id in enumerate(placed_ids):
            items = list(state.instance_items(app_id))
            if placed[app_id].demand.divisible:
                divisible_rows.append((
                    pos, app_id,
                    [
                        (node, node_index[node], max_pi_list[pos] * count)
                        for node, count in items
                        if count > 0
                    ],
                ))
                continue
            nodes = [(node, count) for node, count in items if count > 0]
            if len(nodes) != 1:
                ctx.scalar_verdict = True
                continue
            node, count = nodes[0]
            per_node_seq.setdefault(node_index[node], []).append(pos)
        ctx.divisible_rows = divisible_rows
        # level j: (positions, node columns, per-app instance caps)
        levels = []
        depth = max((len(s) for s in per_node_seq.values()), default=0)
        for j in range(depth):
            entries = [
                (seq[j], col)
                for col, seq in per_node_seq.items()
                if len(seq) > j
            ]
            pos_arr = np.array([e[0] for e in entries], dtype=np.intp)
            col_arr = np.array([e[1] for e in entries], dtype=np.intp)
            cap_arr = np.array([max_pi_list[p] for p, _ in entries]) * counts[
                pos_arr
            ]
            levels.append((pos_arr, col_arr, cap_arr))
        ctx.levels = levels
        return ctx

    # ------------------------------------------------------------------
    def targets_at(
        self,
        level: float,
        placed: Mapping[str, AllocatableApp],
        state: PlacementState,
    ) -> np.ndarray:
        """Per-app aggregate CPU demand at ``level`` (placed order)."""
        remaining, now = self.remaining, self.now
        # JobAllocationRPF.required_cpu, elementwise, in its exact
        # branch order (done -> unreachable -> past-horizon -> formula).
        target_completion = self.goal - level * self.relative_goal
        horizon = target_completion - now
        positive = horizon > EPSILON
        div = np.full(len(remaining), np.inf)
        np.divide(remaining, horizon, out=div, where=positive)
        req = np.where(
            positive, np.minimum(self.max_speed, div), self.max_speed
        )
        req = np.where(level > self.u_max + EPSILON, np.inf, req)
        req = np.where(remaining <= EPSILON, 0.0, req)
        # _target_at_level continuation: unreachable -> saturation cap,
        # then clamp into [min(min_total, max_total), max_total].
        req = np.where(
            np.isinf(req), np.minimum(self.saturation, self.max_total), req
        )
        low = np.minimum(self.min_total, self.max_total)
        t = np.where(req < low, low, req)
        t = np.where(t > self.max_total, self.max_total, t)
        for pos, app_id in self.scalar_rows:
            t[pos] = _target_at_level(placed[app_id], state, level)
        return t

    def verdict(
        self,
        targets: np.ndarray,
        placed: Mapping[str, AllocatableApp],
        state: PlacementState,
    ):
        """Vectorized :func:`_try_distribute`: ``None`` if infeasible,
        else the recorded takes for :meth:`materialize`."""
        if self.scalar_verdict:
            target_map = dict(zip(self.placed_ids, targets.tolist()))
            per_node = _try_distribute(target_map, placed, state)
            return None if per_node is None else ("scalar", per_node)
        residual = self.caps.copy()
        level_takes = []
        for pos_arr, col_arr, cap_arr in self.levels:
            t = targets[pos_arr]
            take = np.minimum(np.minimum(t, residual[col_arr]), cap_arr)
            # The scalar loop only records (and subtracts) a take above
            # EPSILON, and skips apps whose target is at most EPSILON.
            eff = np.where(take > EPSILON, take, 0.0)
            residual[col_arr] -= eff
            if np.any(t - eff > EPSILON):
                return None
            level_takes.append(eff)
        div_entries: List[Tuple[str, str, float]] = []
        for pos, app_id, nodes in self.divisible_rows:
            target = targets[pos]
            if target <= EPSILON:
                continue
            remaining = target
            for node, col, cap in sorted(
                nodes, key=lambda entry: -residual[entry[1]]
            ):
                take = min(remaining, residual[col], cap)
                if take > EPSILON:
                    div_entries.append((app_id, node, float(take)))
                    residual[col] -= take
                    remaining -= take
                if remaining <= EPSILON:
                    break
            if remaining > EPSILON:
                return None
        return ("vector", level_takes, div_entries)

    def materialize(self, verdict) -> Dict[str, Dict[str, float]]:
        """Expand a successful verdict into the scalar path's per-app
        ``{node: cpu}`` dict, matching its insertion order exactly."""
        if verdict[0] == "scalar":
            return verdict[1]
        _, level_takes, div_entries = verdict
        per_node: Dict[str, Dict[str, float]] = {
            app_id: {} for app_id in self.placed_ids
        }
        names = self.node_names
        for (pos_arr, col_arr, _), eff in zip(self.levels, level_takes):
            takes = eff.tolist()
            cols = col_arr.tolist()
            for k, pos in enumerate(pos_arr.tolist()):
                if takes[k] > EPSILON:
                    per_node[self.placed_ids[pos]][names[cols[k]]] = takes[k]
        for app_id, node, take in div_entries:
            per_node[app_id][node] = per_node[app_id].get(node, 0.0) + take
        return per_node

    def utilities(
        self,
        allocations: Mapping[str, float],
        placed: Mapping[str, AllocatableApp],
    ) -> List[float]:
        """Per-app ``rpf.utility(allocation)`` in placed order —
        JobAllocationRPF.utility elementwise for parametric rows, the
        object call for the rest."""
        cpu = np.array(
            [allocations[a] for a in self.placed_ids], dtype=float
        )
        speed = np.minimum(cpu, self.max_speed)
        completion = np.full(len(cpu), np.inf)
        np.divide(self.remaining, speed, out=completion, where=speed > 0)
        completion += self.now
        u = (self.goal - completion) / self.relative_goal
        u = np.maximum(
            NEGATIVE_INFINITY_UTILITY, np.minimum(u, self.u_max)
        )
        u = np.where(cpu <= EPSILON, NEGATIVE_INFINITY_UTILITY, u)
        u = np.where(self.remaining <= EPSILON, 1.0, u)
        values = u.tolist()
        for pos in np.flatnonzero(~self.is_job_row).tolist():
            app_id = self.placed_ids[pos]
            values[pos] = placed[app_id].rpf.utility(allocations[app_id])
        return values


def distribute_load(
    state: PlacementState,
    apps: Mapping[str, AllocatableApp],
    write_load_matrix: bool = True,
    *,
    tables: Optional[SpecArrays] = None,
) -> LoadDistributionResult:
    """Compute the maxmin-fair load matrix for the placement in ``state``.

    Parameters
    ----------
    state:
        The placement to allocate within.  Only applications with placed
        instances receive CPU.
    apps:
        All applications known to the controller, keyed by id.
    write_load_matrix:
        When True (default) the resulting per-instance allocations are
        written back into ``state``.
    tables:
        Optional :class:`SpecArrays` covering (at least) the placed
        applications.  When provided, the level search and refinement
        run on array kernels — bitwise identical to the scalar path,
        which remains the reference implementation (``tables=None``).
    """
    placed_ids = [a for a in apps if state.is_placed(a)]
    result = LoadDistributionResult()
    if not placed_ids:
        if write_load_matrix:
            state.clear_load()
        return result

    placed = {a: apps[a] for a in placed_ids}

    if tables is not None:
        ctx = _VectorContext.build(state, placed, placed_ids, tables)
        if ctx is not None:
            return _distribute_load_vec(
                state, placed, placed_ids, ctx, result, write_load_matrix
            )

    def targets_at(level: float) -> Dict[str, float]:
        return {a: _target_at_level(placed[a], state, level) for a in placed_ids}

    def feasible(level: float) -> Optional[Dict[str, Dict[str, float]]]:
        return _try_distribute(targets_at(level), placed, state)

    # ------------------------------------------------------------------
    # Phase 1+2: binary search the highest feasible common level.
    # ------------------------------------------------------------------
    lo, hi = NEGATIVE_INFINITY_UTILITY, 1.0
    best_assignment = feasible(lo)
    if best_assignment is None:
        # Even the floor level (≈ minimum speeds) does not fit: best
        # effort — hand every app what its nodes can give, worst first.
        result.feasible = False
        best_assignment = _best_effort(placed, state)
        result.common_level = NEGATIVE_INFINITY_UTILITY
    else:
        if feasible(hi) is not None:
            lo = hi
            best_assignment = feasible(hi)
        else:
            for _ in range(_LEVEL_SEARCH_ITERATIONS):
                mid = 0.5 * (lo + hi)
                assignment = feasible(mid)
                if assignment is not None:
                    lo = mid
                    best_assignment = assignment
                else:
                    hi = mid
        result.common_level = lo

    allocations = {
        a: sum(best_assignment.get(a, {}).values()) for a in placed_ids
    }

    # ------------------------------------------------------------------
    # Phase 3: lexicographic refinement with leftover capacity.
    # ------------------------------------------------------------------
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    for app_id, nodes in best_assignment.items():
        for node, cpu in nodes.items():
            residual[node] -= cpu

    for _ in range(_MAX_REFINEMENT_SWEEPS):
        raised_any = False
        order = sorted(
            placed_ids, key=lambda a: placed[a].rpf.utility(allocations[a])
        )
        for app_id in order:
            app = placed[app_id]
            gain = _raise_app(
                app, state, best_assignment.setdefault(app_id, {}),
                allocations[app_id], residual,
            )
            if gain > EPSILON:
                allocations[app_id] += gain
                raised_any = True
        if not raised_any:
            break

    result.allocations = allocations
    result.utilities = {
        a: placed[a].rpf.utility(allocations[a]) for a in placed_ids
    }

    if write_load_matrix:
        state.clear_load()
        for app_id, nodes in best_assignment.items():
            for node, cpu in nodes.items():
                if cpu > EPSILON:
                    state.set_cpu(app_id, node, cpu)
    return result


def _distribute_load_vec(
    state: PlacementState,
    placed: Mapping[str, AllocatableApp],
    placed_ids: List[str],
    ctx: _VectorContext,
    result: LoadDistributionResult,
    write_load_matrix: bool,
) -> LoadDistributionResult:
    """Array-kernel twin of :func:`distribute_load`'s phases 1–3.

    Mirrors the scalar control flow decision for decision and float for
    float; only the per-app inner loops are replaced by vector ops.
    """

    def feasible(level: float):
        return ctx.verdict(ctx.targets_at(level, placed, state), placed, state)

    lo, hi = NEGATIVE_INFINITY_UTILITY, 1.0
    verdict = feasible(lo)
    if verdict is None:
        result.feasible = False
        best_assignment = _best_effort(placed, state)
        result.common_level = NEGATIVE_INFINITY_UTILITY
    else:
        probe = feasible(hi)
        if probe is not None:
            lo = hi
            verdict = probe
        else:
            for _ in range(_LEVEL_SEARCH_ITERATIONS):
                mid = 0.5 * (lo + hi)
                attempt = feasible(mid)
                if attempt is not None:
                    lo = mid
                    verdict = attempt
                else:
                    hi = mid
        result.common_level = lo
        best_assignment = ctx.materialize(verdict)

    allocations = {
        a: sum(best_assignment.get(a, {}).values()) for a in placed_ids
    }

    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    for app_id, nodes in best_assignment.items():
        for node, cpu in nodes.items():
            residual[node] -= cpu

    vec_skip = ctx.is_job_row
    for _ in range(_MAX_REFINEMENT_SWEEPS):
        raised_any = False
        values = ctx.utilities(allocations, placed)
        keys = dict(zip(placed_ids, values))
        order = sorted(placed_ids, key=keys.__getitem__)
        # Start-of-sweep headroom: each app is visited once per sweep
        # and only its own allocation moves, so the visit-time headroom
        # the scalar loop computes equals this one.  Zero-headroom
        # parametric rows are exact no-ops in _raise_app; skip them.
        cur = np.array([allocations[a] for a in placed_ids], dtype=float)
        useful = np.minimum(ctx.max_total, np.maximum(ctx.saturation, cur))
        headroom = useful - cur
        skip = {
            placed_ids[pos]
            for pos in np.flatnonzero(
                vec_skip & (headroom <= EPSILON)
            ).tolist()
        }
        for app_id in order:
            if app_id in skip:
                continue
            app = placed[app_id]
            gain = _raise_app(
                app, state, best_assignment.setdefault(app_id, {}),
                allocations[app_id], residual,
            )
            if gain > EPSILON:
                allocations[app_id] += gain
                raised_any = True
        if not raised_any:
            break

    result.allocations = allocations
    result.utilities = dict(
        zip(placed_ids, ctx.utilities(allocations, placed))
    )

    if write_load_matrix:
        state.clear_load()
        for app_id, nodes in best_assignment.items():
            for node, cpu in nodes.items():
                if cpu > EPSILON:
                    state.set_cpu(app_id, node, cpu)
    return result


def _raise_app(
    app: AllocatableApp,
    state: PlacementState,
    assignment: Dict[str, float],
    current_total: float,
    residual: Dict[str, float],
) -> float:
    """Raise one application's allocation as far as residual CPU allows.

    Returns the total CPU gained.  Mutates ``assignment`` and ``residual``.
    """
    _, max_total = _aggregate_bounds(app, state)
    # CPU the app could still usefully absorb: up to its saturation point
    # and its speed ceiling.
    saturation = app.rpf.saturation_cpu
    useful_ceiling = min(max_total, max(saturation, current_total))
    headroom = useful_ceiling - current_total
    if headroom <= EPSILON:
        return 0.0

    gained = 0.0
    instance_nodes = state.instances(app.app_id)
    for node in sorted(instance_nodes, key=lambda n: -residual[n]):
        count = instance_nodes[node]
        cap = app.demand.max_cpu_per_instance_mhz * count
        here = assignment.get(node, 0.0)
        take = min(headroom - gained, residual[node], cap - here)
        if take > EPSILON:
            assignment[node] = here + take
            residual[node] -= take
            gained += take
        if headroom - gained <= EPSILON:
            break
    return gained


def _best_effort(
    placed: Mapping[str, AllocatableApp], state: PlacementState
) -> Dict[str, Dict[str, float]]:
    """Fallback when minimum speeds do not fit: give minima where
    possible, clipping on saturated nodes, singletons first."""
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    per_node: Dict[str, Dict[str, float]] = {a: {} for a in placed}
    ordered = sorted(placed, key=lambda a: placed[a].demand.divisible)
    for app_id in ordered:
        app = placed[app_id]
        min_total, _ = _aggregate_bounds(app, state)
        remaining = min_total
        instance_nodes = state.instances(app_id)
        for node in sorted(instance_nodes, key=lambda n: -residual[n]):
            count = instance_nodes[node]
            cap = app.demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
    return per_node
