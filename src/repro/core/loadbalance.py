"""Load distribution for a fixed placement: progressive filling.

Given a placement matrix ``P`` (which instances sit on which nodes), the
controller must choose the load matrix ``L`` — how much CPU each instance
receives — to maximize the sorted vector of application relative
performance lexicographically (§3.2).  This module implements that inner
optimization by *progressive filling* on the relative-performance scale:

1. every placed application first receives its minimum speed
   (``ω^min`` per instance);
2. a common relative-performance level ``u`` is raised (binary search) as
   far as node CPU capacities allow, each application demanding
   ``ω_m(u)`` — the inverse of its RPF — clamped into its
   ``[min, max]`` speed range (an application already at its maximum
   utility simply demands its maximum useful speed, so it never blocks
   the level);
3. any remaining capacity is handed out in ascending-utility order:
   each application is individually raised as far as its own nodes'
   residual capacity permits (lexicographic refinement).

Applications enter the optimizer as :class:`AllocatableApp` — a resource
demand plus an RPF of the CPU allocation.  For batch jobs the RPF is the
per-job hypothetical function of §4.2 (the ``W`` matrix row: the average
speed the job must sustain from now on to reach a target relative
performance); for transactional applications it is the queuing-model RPF
of §3.3.  The coupling between jobs (shared future capacity) affects
*evaluation* of the resulting allocation, not the per-job demand curves,
so this optimizer stays workload-agnostic.

Distributing an application's aggregate target over its instances is a
transportation problem; we use a greedy scheme that is exact for
single-node applications (all batch jobs — they are singletons) and for
any number of divisible applications that do not compete with each other
on shared nodes (the experimental configurations).  With several divisible
applications overlapping on saturated nodes it is a heuristic, consistent
with the paper's overall heuristic approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.core.placement import AppDemand, PlacementState
from repro.core.rpf import (
    NEGATIVE_INFINITY_UTILITY,
    RelativePerformanceFunction,
)
from repro.units import EPSILON, clamp

#: Binary-search iterations for utility levels.  48 halvings of the
#: [-50, 1] utility interval resolve levels to ~2e-13, far below any
#: physically meaningful difference.
_LEVEL_SEARCH_ITERATIONS = 48

#: Maximum refinement sweeps.  Each sweep either raises at least one
#: application or terminates, so this is a safety bound, not a tuning knob.
_MAX_REFINEMENT_SWEEPS = 64


@dataclass(frozen=True)
class AllocatableApp:
    """One application as seen by the load-distribution optimizer."""

    demand: AppDemand
    rpf: RelativePerformanceFunction

    @property
    def app_id(self) -> str:
        return self.demand.app_id


@dataclass
class LoadDistributionResult:
    """Outcome of :func:`distribute_load`.

    Attributes
    ----------
    allocations:
        Total CPU (MHz) granted to each placed application.
    utilities:
        Relative performance at the granted allocation, per the
        application's own RPF.  (Batch job utilities are re-derived by the
        batch model during placement evaluation; these values are the
        per-app view used for ordering.)
    common_level:
        The highest common relative-performance level reached in phase 2.
    feasible:
        False when even the minimum speeds could not be satisfied;
        allocations are then best-effort.
    """

    allocations: Dict[str, float] = field(default_factory=dict)
    utilities: Dict[str, float] = field(default_factory=dict)
    common_level: float = NEGATIVE_INFINITY_UTILITY
    feasible: bool = True


def _aggregate_bounds(
    app: AllocatableApp, state: PlacementState
) -> Tuple[float, float]:
    """(min_total, max_total) CPU for the app given its instance count."""
    count = state.instance_count(app.app_id)
    min_total = app.demand.min_cpu_mhz * count
    max_per_instance = app.demand.max_cpu_per_instance_mhz
    if max_per_instance == float("inf"):
        max_total = float("inf")
    else:
        max_total = max_per_instance * count
    return min_total, max_total


def _target_at_level(
    app: AllocatableApp, state: PlacementState, level: float
) -> float:
    """CPU the app demands at relative-performance level ``level``.

    The inverse RPF, clamped into the app's feasible speed range.  An
    unreachable level (``required_cpu == inf``) clamps to the maximum
    useful speed: the app saturates rather than blocking the level.
    """
    min_total, max_total = _aggregate_bounds(app, state)
    required = app.rpf.required_cpu(level)
    if required == float("inf"):
        # The level is unreachable: the app demands its saturation
        # allocation (beyond which more CPU cannot improve it), bounded
        # by its speed ceiling.
        required = min(app.rpf.saturation_cpu, max_total)
    if max_total == float("inf"):
        # No speed ceiling: cap by what its nodes could ever provide.
        max_total = sum(
            state.cluster.node(n).cpu_capacity for n in state.nodes_of(app.app_id)
        )
        required = min(required, max_total)
    return clamp(required, min(min_total, max_total), max_total)


def _try_distribute(
    targets: Mapping[str, float],
    apps: Mapping[str, AllocatableApp],
    state: PlacementState,
) -> Optional[Dict[str, Dict[str, float]]]:
    """Distribute aggregate targets over instances; ``None`` if infeasible.

    Singleton (non-divisible) applications are handled first — they have
    no freedom — then divisible applications draw greedily from their
    nodes in descending residual order.
    """
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    per_node: Dict[str, Dict[str, float]] = {app_id: {} for app_id in targets}

    singletons = [a for a in targets if not apps[a].demand.divisible]
    divisible = [a for a in targets if apps[a].demand.divisible]

    for app_id in singletons:
        target = targets[app_id]
        if target <= EPSILON:
            continue
        nodes = state.nodes_of(app_id)
        remaining = target
        # A non-divisible app normally has a single instance; if it has
        # several (not used by the experiments), fill them in order.
        for node in nodes:
            count = state.instances(app_id).get(node, 0)
            cap = apps[app_id].demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
        if remaining > EPSILON:
            return None

    for app_id in divisible:
        target = targets[app_id]
        if target <= EPSILON:
            continue
        remaining = target
        instance_nodes = state.instances(app_id)
        # Most-residual-first keeps the greedy exact for a lone divisible
        # application and balances the router's view of instance speeds.
        for node in sorted(instance_nodes, key=lambda n: -residual[n]):
            count = instance_nodes[node]
            cap = apps[app_id].demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = per_node[app_id].get(node, 0.0) + take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
        if remaining > EPSILON:
            return None

    return per_node


def distribute_load(
    state: PlacementState,
    apps: Mapping[str, AllocatableApp],
    write_load_matrix: bool = True,
) -> LoadDistributionResult:
    """Compute the maxmin-fair load matrix for the placement in ``state``.

    Parameters
    ----------
    state:
        The placement to allocate within.  Only applications with placed
        instances receive CPU.
    apps:
        All applications known to the controller, keyed by id.
    write_load_matrix:
        When True (default) the resulting per-instance allocations are
        written back into ``state``.
    """
    placed_ids = [a for a in apps if state.is_placed(a)]
    result = LoadDistributionResult()
    if not placed_ids:
        if write_load_matrix:
            state.clear_load()
        return result

    placed = {a: apps[a] for a in placed_ids}

    def targets_at(level: float) -> Dict[str, float]:
        return {a: _target_at_level(placed[a], state, level) for a in placed_ids}

    def feasible(level: float) -> Optional[Dict[str, Dict[str, float]]]:
        return _try_distribute(targets_at(level), placed, state)

    # ------------------------------------------------------------------
    # Phase 1+2: binary search the highest feasible common level.
    # ------------------------------------------------------------------
    lo, hi = NEGATIVE_INFINITY_UTILITY, 1.0
    best_assignment = feasible(lo)
    if best_assignment is None:
        # Even the floor level (≈ minimum speeds) does not fit: best
        # effort — hand every app what its nodes can give, worst first.
        result.feasible = False
        best_assignment = _best_effort(placed, state)
        result.common_level = NEGATIVE_INFINITY_UTILITY
    else:
        if feasible(hi) is not None:
            lo = hi
            best_assignment = feasible(hi)
        else:
            for _ in range(_LEVEL_SEARCH_ITERATIONS):
                mid = 0.5 * (lo + hi)
                assignment = feasible(mid)
                if assignment is not None:
                    lo = mid
                    best_assignment = assignment
                else:
                    hi = mid
        result.common_level = lo

    allocations = {
        a: sum(best_assignment.get(a, {}).values()) for a in placed_ids
    }

    # ------------------------------------------------------------------
    # Phase 3: lexicographic refinement with leftover capacity.
    # ------------------------------------------------------------------
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    for app_id, nodes in best_assignment.items():
        for node, cpu in nodes.items():
            residual[node] -= cpu

    for _ in range(_MAX_REFINEMENT_SWEEPS):
        raised_any = False
        order = sorted(
            placed_ids, key=lambda a: placed[a].rpf.utility(allocations[a])
        )
        for app_id in order:
            app = placed[app_id]
            gain = _raise_app(
                app, state, best_assignment.setdefault(app_id, {}),
                allocations[app_id], residual,
            )
            if gain > EPSILON:
                allocations[app_id] += gain
                raised_any = True
        if not raised_any:
            break

    result.allocations = allocations
    result.utilities = {
        a: placed[a].rpf.utility(allocations[a]) for a in placed_ids
    }

    if write_load_matrix:
        state.clear_load()
        for app_id, nodes in best_assignment.items():
            for node, cpu in nodes.items():
                if cpu > EPSILON:
                    state.set_cpu(app_id, node, cpu)
    return result


def _raise_app(
    app: AllocatableApp,
    state: PlacementState,
    assignment: Dict[str, float],
    current_total: float,
    residual: Dict[str, float],
) -> float:
    """Raise one application's allocation as far as residual CPU allows.

    Returns the total CPU gained.  Mutates ``assignment`` and ``residual``.
    """
    _, max_total = _aggregate_bounds(app, state)
    # CPU the app could still usefully absorb: up to its saturation point
    # and its speed ceiling.
    saturation = app.rpf.saturation_cpu
    useful_ceiling = min(max_total, max(saturation, current_total))
    headroom = useful_ceiling - current_total
    if headroom <= EPSILON:
        return 0.0

    gained = 0.0
    instance_nodes = state.instances(app.app_id)
    for node in sorted(instance_nodes, key=lambda n: -residual[n]):
        count = instance_nodes[node]
        cap = app.demand.max_cpu_per_instance_mhz * count
        here = assignment.get(node, 0.0)
        take = min(headroom - gained, residual[node], cap - here)
        if take > EPSILON:
            assignment[node] = here + take
            residual[node] -= take
            gained += take
        if headroom - gained <= EPSILON:
            break
    return gained


def _best_effort(
    placed: Mapping[str, AllocatableApp], state: PlacementState
) -> Dict[str, Dict[str, float]]:
    """Fallback when minimum speeds do not fit: give minima where
    possible, clipping on saturated nodes, singletons first."""
    residual: Dict[str, float] = {
        node.name: node.cpu_capacity for node in state.cluster
    }
    per_node: Dict[str, Dict[str, float]] = {a: {} for a in placed}
    ordered = sorted(placed, key=lambda a: placed[a].demand.divisible)
    for app_id in ordered:
        app = placed[app_id]
        min_total, _ = _aggregate_bounds(app, state)
        remaining = min_total
        instance_nodes = state.instances(app_id)
        for node in sorted(instance_nodes, key=lambda n: -residual[n]):
            count = instance_nodes[node]
            cap = app.demand.max_cpu_per_instance_mhz * count
            take = min(remaining, residual[node], cap)
            if take > EPSILON:
                per_node[app_id][node] = take
                residual[node] -= take
                remaining -= take
            if remaining <= EPSILON:
                break
    return per_node
