"""The workload-model interface the placement controller drives.

The controller is workload-agnostic: every workload type (transactional,
batch, …) plugs in through this protocol, which answers the two questions
the placement algorithm asks (§3.2) plus the bookkeeping the search needs:

* which applications exist and what do they demand
  (:meth:`WorkloadModel.app_specs`),
* which of them may be (re)placed this cycle
  (:meth:`WorkloadModel.placement_candidates`),
* what relative performance each application is predicted to achieve
  under a candidate allocation (:meth:`WorkloadModel.evaluate`).

``evaluate`` receives the *per-application total CPU allocations* of a
candidate placement and returns predicted relative performance for **all**
of the model's applications — including unplaced ones (a queued job's
predicted performance depends on the aggregate batch allocation, §4.2).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.loadbalance import AllocatableApp


@runtime_checkable
class WorkloadModel(Protocol):
    """One workload type under integrated management."""

    def app_specs(self, now: float) -> Mapping[str, AllocatableApp]:
        """Demands + allocation RPFs for the model's active applications.

        Keyed by application id.  Must include every application that is
        currently placed or is a placement candidate.
        """
        ...

    def placement_candidates(self, now: float) -> Sequence[str]:
        """Application ids eligible for (re)placement this cycle."""
        ...

    def evaluate(
        self, allocations: Mapping[str, float], now: float, horizon: float
    ) -> Mapping[str, float]:
        """Predicted relative performance for all the model's applications.

        ``allocations`` maps application ids to the total CPU (MHz) a
        candidate placement grants them over the next control cycle of
        length ``horizon``; applications absent from the mapping receive
        zero.
        """
        ...
