"""Placement (``P``) and load (``L``) matrices.

§3.2: ``P[m][n]`` is the number of instances of application ``m`` on node
``n``; ``L[m][n]`` is the CPU speed consumed by all instances of ``m`` on
``n``.  :class:`PlacementState` bundles both with the cluster's capacity
bookkeeping and is the object the placement algorithm mutates while
searching for a better configuration.

Array backing
-------------
The per-node usage caches are mirrored into dense numpy arrays indexed by
:attr:`PlacementState.node_index` (node name -> column).  Every mutation
computes the new scalar value once and writes it to both the dict and the
array, so the two views are *bitwise* equal at all times — the vectorized
solver paths (:mod:`repro.core.loadbalance`, :mod:`repro.core.apc`) read
the arrays while the dict API remains the order-preserving view the
scalar reference solver and the snapshot format rely on.  The sparse
``P``/``L`` dicts stay authoritative for structure because dict insertion
order is semantically significant (see :meth:`PlacementState.matrix_key`);
:meth:`PlacementState.dense_view` materializes them as ``(apps x nodes)``
matrices on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.errors import CapacityError, PlacementError
from repro.units import EPSILON


@dataclass(frozen=True)
class DensePlacement:
    """Dense ``(apps x nodes)`` materialization of a placement state.

    Row order is the placement dict's insertion order (the same order
    every order-sensitive iteration uses); column order is the cluster's
    node order.  Built on demand by :meth:`PlacementState.dense_view` —
    a diagnostic/analysis view, not the mutation surface.
    """

    app_ids: Tuple[str, ...]
    app_index: Mapping[str, int]
    node_names: Tuple[str, ...]
    node_index: Mapping[str, int]
    instances: np.ndarray  # (A, N) int64 — the P matrix
    load: np.ndarray  # (A, N) float64 — the L matrix


@dataclass(frozen=True)
class AppDemand:
    """Resource requirements of one application, as seen by the placer.

    Parameters
    ----------
    app_id:
        Stable identifier.
    memory_mb:
        Load-independent demand (§3.2): memory consumed by each instance
        of the application whenever it is started on a node.
    min_cpu_mhz:
        Minimum speed each instance must receive whenever it runs (a job
        stage's ``ω^min``).  0 for transactional applications.
    max_cpu_per_instance_mhz:
        Maximum useful speed of one instance (a job stage's ``ω^max``; for
        a transactional instance, typically the node's per-processor speed
        times the instance's thread-level parallelism — we use the node
        CPU capacity by default).
    max_instances:
        Cap on simultaneous instances; batch jobs are singletons (1),
        transactional applications may be clustered (``None`` = unbounded).
    divisible:
        Whether the application's load can be split across instances on
        different nodes.  True for transactional applications (the router
        balances requests), False for jobs.
    """

    app_id: str
    memory_mb: float
    min_cpu_mhz: float = 0.0
    max_cpu_per_instance_mhz: float = float("inf")
    max_instances: Optional[int] = 1
    divisible: bool = False

    def __post_init__(self) -> None:
        if self.memory_mb < 0:
            raise PlacementError(f"{self.app_id}: negative memory demand")
        if self.min_cpu_mhz < 0:
            raise PlacementError(f"{self.app_id}: negative min CPU")
        if self.max_cpu_per_instance_mhz < self.min_cpu_mhz - EPSILON:
            raise PlacementError(
                f"{self.app_id}: max CPU {self.max_cpu_per_instance_mhz} "
                f"below min CPU {self.min_cpu_mhz}"
            )


class PlacementState:
    """Mutable placement + load assignment over a cluster.

    Tracks, per node, which application instances are placed and how much
    CPU each consumes; enforces memory and CPU capacity on every mutation.
    Copy-on-explore: the search algorithm calls :meth:`copy` to branch.
    """

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        # P: app_id -> node -> instance count
        self._instances: Dict[str, Dict[str, int]] = {}
        # L: app_id -> node -> cpu MHz (aggregate over instances there)
        self._load: Dict[str, Dict[str, float]] = {}
        # memory demand per instance, recorded at placement time
        self._memory_demand: Dict[str, float] = {}
        # per-node caches
        self._node_memory_used: Dict[str, float] = {n.name: 0.0 for n in cluster}
        self._node_cpu_used: Dict[str, float] = {n.name: 0.0 for n in cluster}
        # dense mirrors of the per-node caches (see module docstring):
        # every value written to the dicts above is also written, bit for
        # bit, to these arrays at the node's column index.
        self._node_index: Dict[str, int] = {
            n.name: i for i, n in enumerate(cluster)
        }
        self._mem_used_arr = np.zeros(len(self._node_index))
        self._cpu_used_arr = np.zeros(len(self._node_index))
        # O(1) per-app instance totals (sum over the app's node dict)
        self._inst_total: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def app_ids(self) -> List[str]:
        """Applications with at least one instance placed."""
        return [a for a, nodes in self._instances.items() if nodes]

    def instances(self, app_id: str) -> Dict[str, int]:
        """``{node: count}`` for ``app_id`` (empty if not placed)."""
        return dict(self._instances.get(app_id, {}))

    def instances_on(self, app_id: str, node: str) -> int:
        """``P[app_id][node]`` without copying the app's node dict."""
        return self._instances.get(app_id, {}).get(node, 0)

    def instance_items(self, app_id: str):
        """Read-only ``(node, count)`` view for ``app_id``, in insertion
        order.  Zero-copy; callers must not mutate the state while
        iterating."""
        return self._instances.get(app_id, {}).items()

    def instance_count(self, app_id: str) -> int:
        return self._inst_total.get(app_id, 0)

    def is_placed(self, app_id: str) -> bool:
        return self._inst_total.get(app_id, 0) > 0

    def nodes_of(self, app_id: str) -> List[str]:
        return [n for n, c in self._instances.get(app_id, {}).items() if c > 0]

    def apps_on(self, node: str) -> List[str]:
        """Applications with instances on ``node``, in insertion order."""
        return [
            app_id
            for app_id, nodes in self._instances.items()
            if nodes.get(node, 0) > 0
        ]

    def cpu_of(self, app_id: str) -> float:
        """Total CPU allocated to ``app_id`` across the cluster (``ω_m``)."""
        return sum(self._load.get(app_id, {}).values())

    def cpu_on(self, app_id: str, node: str) -> float:
        """CPU allocated to ``app_id`` on ``node`` (``L[m][n]``)."""
        return self._load.get(app_id, {}).get(node, 0.0)

    def memory_demand_of(self, app_id: str) -> Optional[float]:
        """Per-instance memory recorded when the app was first placed
        (``None`` if it never was)."""
        return self._memory_demand.get(app_id)

    def forget_memory_demand(self, app_id: str) -> None:
        """Clear the recorded per-instance memory so the application can
        be re-placed with a different (new stage's) demand.  Only valid
        while the application has no placed instances."""
        if self.instance_count(app_id) > 0:
            raise PlacementError(
                f"{app_id} still has instances; cannot change its demand"
            )
        self._memory_demand.pop(app_id, None)

    def memory_used(self, node: str) -> float:
        return self._node_memory_used[node]

    def memory_available(self, node: str) -> float:
        return self._cluster.node(node).memory_capacity - self._node_memory_used[node]

    def cpu_used(self, node: str) -> float:
        return self._node_cpu_used[node]

    def cpu_available(self, node: str) -> float:
        return self._cluster.node(node).cpu_capacity - self._node_cpu_used[node]

    def total_cpu_used(self) -> float:
        return sum(self._node_cpu_used.values())

    # ------------------------------------------------------------------
    # Dense array views (vectorized solver surface)
    # ------------------------------------------------------------------
    @property
    def node_index(self) -> Mapping[str, int]:
        """Node name -> array column, in cluster order.  Shared between
        copies (the cluster is immutable)."""
        return self._node_index

    def memory_used_array(self) -> np.ndarray:
        """Live per-node memory-used mirror (bitwise equal to the dict
        cache).  Callers must treat it as read-only."""
        return self._mem_used_arr

    def cpu_used_array(self) -> np.ndarray:
        """Live per-node CPU-used mirror (bitwise equal to the dict
        cache).  Callers must treat it as read-only."""
        return self._cpu_used_arr

    def capacity_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(cpu_capacity, memory_capacity)`` per node, in column order.

        Rebuilt on every call because capacities are availability-aware
        (an unavailable node reports 0.0).
        """
        cpu = np.array(
            [self._cluster.node(n).cpu_capacity for n in self._node_index]
        )
        mem = np.array(
            [self._cluster.node(n).memory_capacity for n in self._node_index]
        )
        return cpu, mem

    def dense_view(self) -> DensePlacement:
        """Materialize ``P`` and ``L`` as dense ``(apps x nodes)`` arrays.

        Includes every app the placement dict tracks (even ones whose
        instance count has dropped to zero would be absent — the dict
        deletes them), with rows in dict insertion order.
        """
        app_ids = tuple(self._instances)
        app_index = {a: i for i, a in enumerate(app_ids)}
        n_apps, n_nodes = len(app_ids), len(self._node_index)
        inst = np.zeros((n_apps, n_nodes), dtype=np.int64)
        load = np.zeros((n_apps, n_nodes))
        for a, nodes in self._instances.items():
            row = app_index[a]
            for node, count in nodes.items():
                inst[row, self._node_index[node]] = count
        for a, nodes in self._load.items():
            row = app_index.get(a)
            if row is None:
                continue
            for node, cpu in nodes.items():
                load[row, self._node_index[node]] = cpu
        return DensePlacement(
            app_ids=app_ids,
            app_index=app_index,
            node_names=tuple(self._node_index),
            node_index=dict(self._node_index),
            instances=inst,
            load=load,
        )

    def allocations(self) -> Dict[str, float]:
        """``{app_id: total CPU}`` over all placed applications."""
        return {app_id: self.cpu_of(app_id) for app_id in self.app_ids}

    def as_matrix(self) -> Dict[str, Dict[str, int]]:
        """A deep copy of the placement matrix ``P``."""
        return {a: dict(nodes) for a, nodes in self._instances.items() if nodes}

    def matrix_key(self) -> Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]:
        """A hashable fingerprint of the placement matrix ``P``.

        Preserves dict *insertion order* (both the application order and
        each application's node order), not just contents: downstream
        consumers — the load distributor's tie-breaking, action diffing —
        iterate these dicts, so two states may only share a fingerprint
        when every order-sensitive iteration over them behaves
        identically.  This is what makes the controller's per-cycle
        evaluation memo byte-exact.
        """
        return tuple(
            (a, tuple(nodes.items()))
            for a, nodes in self._instances.items()
            if nodes
        )

    def load_matrix(self) -> Dict[str, Dict[str, float]]:
        """A deep copy of the load matrix ``L``."""
        return {
            a: {n: c for n, c in nodes.items() if c > EPSILON}
            for a, nodes in self._load.items()
            if any(c > EPSILON for c in nodes.values())
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def place(self, app_id: str, node: str, memory_mb: float, count: int = 1) -> None:
        """Place ``count`` instances of ``app_id`` on ``node``.

        Raises :class:`CapacityError` if the node lacks memory.
        """
        if count <= 0:
            raise PlacementError(f"instance count must be positive, got {count}")
        if node not in self._node_memory_used:
            raise PlacementError(f"unknown node: {node!r}")
        existing_demand = self._memory_demand.get(app_id)
        if existing_demand is not None and abs(existing_demand - memory_mb) > EPSILON:
            raise PlacementError(
                f"{app_id}: inconsistent memory demand "
                f"({existing_demand} vs {memory_mb})"
            )
        needed = memory_mb * count
        if needed > self.memory_available(node) + EPSILON:
            raise CapacityError(
                f"node {node}: {needed:.0f}MB needed for {count}x {app_id}, "
                f"only {self.memory_available(node):.0f}MB free"
            )
        self._memory_demand[app_id] = memory_mb
        self._instances.setdefault(app_id, {})
        self._instances[app_id][node] = self._instances[app_id].get(node, 0) + count
        new_used = self._node_memory_used[node] + needed
        self._node_memory_used[node] = new_used
        self._mem_used_arr[self._node_index[node]] = new_used
        self._inst_total[app_id] = self._inst_total.get(app_id, 0) + count

    def remove(self, app_id: str, node: str, count: int = 1) -> None:
        """Remove ``count`` instances of ``app_id`` from ``node``.

        Any CPU allocated to the application on the node is released.
        """
        have = self._instances.get(app_id, {}).get(node, 0)
        if count <= 0 or have < count:
            raise PlacementError(
                f"cannot remove {count}x {app_id} from {node}: {have} placed"
            )
        self._instances[app_id][node] = have - count
        if self._instances[app_id][node] == 0:
            del self._instances[app_id][node]
        new_total = self._inst_total.get(app_id, 0) - count
        if new_total > 0:
            self._inst_total[app_id] = new_total
        else:
            self._inst_total.pop(app_id, None)
        new_used = self._node_memory_used[node] - self._memory_demand[app_id] * count
        if new_used < 0:
            new_used = 0.0
        self._node_memory_used[node] = new_used
        self._mem_used_arr[self._node_index[node]] = new_used
        if self._instances[app_id].get(node, 0) == 0:
            self.set_cpu(app_id, node, 0.0)
        if not self._instances[app_id]:
            del self._instances[app_id]

    def set_cpu(self, app_id: str, node: str, cpu_mhz: float) -> None:
        """Set ``L[app_id][node] = cpu_mhz``.

        Raises :class:`CapacityError` on node CPU overflow and
        :class:`PlacementError` if the application has no instance there
        (unless setting to zero).
        """
        if cpu_mhz < -EPSILON:
            raise PlacementError(f"negative CPU allocation: {cpu_mhz}")
        cpu_mhz = max(0.0, cpu_mhz)
        if cpu_mhz > EPSILON and self._instances.get(app_id, {}).get(node, 0) == 0:
            raise PlacementError(f"{app_id} has no instance on {node}")
        current = self._load.get(app_id, {}).get(node, 0.0)
        new_used = self._node_cpu_used[node] - current + cpu_mhz
        capacity = self._cluster.node(node).cpu_capacity
        if new_used > capacity + EPSILON:
            raise CapacityError(
                f"node {node}: CPU {new_used:.1f}MHz exceeds capacity {capacity:.1f}MHz"
            )
        self._node_cpu_used[node] = new_used
        self._cpu_used_arr[self._node_index[node]] = new_used
        self._load.setdefault(app_id, {})[node] = cpu_mhz
        if cpu_mhz <= EPSILON:
            self._load[app_id].pop(node, None)

    def clear_load(self) -> None:
        """Zero the entire load matrix (placement is kept)."""
        self._load = {}
        self._node_cpu_used = {n: 0.0 for n in self._node_cpu_used}
        self._cpu_used_arr.fill(0.0)

    def copy(self) -> "PlacementState":
        """A deep, independent copy sharing only the (immutable) cluster."""
        clone = PlacementState.__new__(PlacementState)
        clone._cluster = self._cluster
        clone._instances = {a: dict(nodes) for a, nodes in self._instances.items()}
        clone._load = {a: dict(nodes) for a, nodes in self._load.items()}
        clone._memory_demand = dict(self._memory_demand)
        clone._node_memory_used = dict(self._node_memory_used)
        clone._node_cpu_used = dict(self._node_cpu_used)
        clone._node_index = self._node_index
        clone._mem_used_arr = self._mem_used_arr.copy()
        clone._cpu_used_arr = self._cpu_used_arr.copy()
        clone._inst_total = dict(self._inst_total)
        return clone

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Verbatim JSON form of the full state, caches included.

        Two things are preserved deliberately: dict *insertion order*
        (see :meth:`matrix_key` — iteration order is semantically
        significant for tie-breaking and diffing, and JSON objects keep
        key order through a dump/load round trip), and the accumulated
        per-node usage caches (re-summing them fresh could differ in the
        last float ulp from the values the original run accumulated,
        breaking byte-identical resume).  Empty per-app entries are kept
        for the same order-sensitivity reason: re-placing such an app
        must land at its original dict position.
        """
        return {
            "instances": {a: dict(n) for a, n in self._instances.items()},
            "load": {a: dict(n) for a, n in self._load.items()},
            "memory_demand": dict(self._memory_demand),
            "node_memory_used": dict(self._node_memory_used),
            "node_cpu_used": dict(self._node_cpu_used),
        }

    @classmethod
    def from_dict(cls, cluster: Cluster, data: Dict[str, object]) -> "PlacementState":
        """Rebuild a state captured by :meth:`to_dict` over ``cluster``."""
        state = cls.__new__(cls)
        state._cluster = cluster
        state._instances = {
            a: {n: int(c) for n, c in nodes.items()}
            for a, nodes in data["instances"].items()
        }
        state._load = {
            a: {n: float(c) for n, c in nodes.items()}
            for a, nodes in data["load"].items()
        }
        state._memory_demand = {
            a: float(m) for a, m in data["memory_demand"].items()
        }
        state._node_memory_used = {
            n: float(v) for n, v in data["node_memory_used"].items()
        }
        state._node_cpu_used = {
            n: float(v) for n, v in data["node_cpu_used"].items()
        }
        unknown = set(state._node_memory_used) - set(cluster.node_names)
        if unknown:
            raise PlacementError(
                f"placement state references unknown nodes: {sorted(unknown)}"
            )
        state._node_index = {n: i for i, n in enumerate(cluster.node_names)}
        state._mem_used_arr = np.array(
            [state._node_memory_used.get(n, 0.0) for n in state._node_index]
        )
        state._cpu_used_arr = np.array(
            [state._node_cpu_used.get(n, 0.0) for n in state._node_index]
        )
        state._inst_total = {
            a: total
            for a, nodes in state._instances.items()
            if (total := sum(nodes.values()))
        }
        return state

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-derive caches and assert internal consistency (for tests)."""
        for node in self._cluster:
            mem = sum(
                self._memory_demand.get(a, 0.0) * nodes.get(node.name, 0)
                for a, nodes in self._instances.items()
            )
            if abs(mem - self._node_memory_used[node.name]) > 1e-3:
                raise PlacementError(
                    f"memory cache drift on {node.name}: "
                    f"{mem} vs {self._node_memory_used[node.name]}"
                )
            if mem > node.memory_capacity + EPSILON:
                raise CapacityError(f"node {node.name} memory overcommitted")
            cpu = sum(
                loads.get(node.name, 0.0) for loads in self._load.values()
            )
            if abs(cpu - self._node_cpu_used[node.name]) > 1e-3:
                raise PlacementError(
                    f"CPU cache drift on {node.name}: "
                    f"{cpu} vs {self._node_cpu_used[node.name]}"
                )
            if cpu > node.cpu_capacity + EPSILON:
                raise CapacityError(f"node {node.name} CPU overcommitted")
            col = self._node_index[node.name]
            if self._mem_used_arr[col] != self._node_memory_used[node.name]:
                raise PlacementError(
                    f"memory array mirror drift on {node.name}: "
                    f"{self._mem_used_arr[col]} vs "
                    f"{self._node_memory_used[node.name]}"
                )
            if self._cpu_used_arr[col] != self._node_cpu_used[node.name]:
                raise PlacementError(
                    f"CPU array mirror drift on {node.name}: "
                    f"{self._cpu_used_arr[col]} vs "
                    f"{self._node_cpu_used[node.name]}"
                )
        for app_id, nodes in self._instances.items():
            if self._inst_total.get(app_id, 0) != sum(nodes.values()):
                raise PlacementError(
                    f"instance-total drift for {app_id}: "
                    f"{self._inst_total.get(app_id, 0)} vs {sum(nodes.values())}"
                )
        for app_id, total in self._inst_total.items():
            if total <= 0 or app_id not in self._instances:
                raise PlacementError(
                    f"stale instance-total entry for {app_id}: {total}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = sum(self.instance_count(a) for a in self.app_ids)
        return f"PlacementState({len(self.app_ids)} apps, {placed} instances)"
