"""The paper's primary contribution: RPF-driven application placement.

This package contains the workload-agnostic pieces of the management
system:

* :mod:`repro.core.rpf` — the relative-performance-function protocol that
  makes transactional and batch workloads comparable.
* :mod:`repro.core.objective` — the maxmin-extension ordering over vectors
  of per-application relative performance.
* :mod:`repro.core.placement` — placement (``P``) and load (``L``)
  matrices.
* :mod:`repro.core.loadbalance` — optimal load distribution for a fixed
  placement via progressive filling.
* :mod:`repro.core.constraints` — placement constraints (memory, pinning,
  collocation).
* :mod:`repro.core.apc` — the Application Placement Controller: the
  three-nested-loop heuristic that searches for a better placement each
  control cycle.
"""

from repro.core.rpf import (
    RelativePerformanceFunction,
    PiecewiseLinearRPF,
    LinearRPF,
    NEGATIVE_INFINITY_UTILITY,
)
from repro.core.objective import (
    UtilityVector,
    PlacementScore,
    lex_explain,
    Objective,
    LexMaxMinObjective,
    UtilitarianObjective,
    resolve_objective,
)
from repro.core.admission import (
    AdmissionStrategy,
    LRPFAdmission,
    FCFSAdmission,
    resolve_admission,
)
from repro.core.placement import PlacementState, AppDemand, DensePlacement
from repro.core.loadbalance import (
    distribute_load,
    LoadDistributionResult,
    SpecArrays,
)
from repro.core.constraints import (
    PlacementConstraint,
    PinToNodes,
    AntiCollocation,
    Collocation,
    MaxInstancesPerNode,
    ConstraintSet,
)
from repro.core.apc import ApplicationPlacementController, APCConfig, APCResult

__all__ = [
    "RelativePerformanceFunction",
    "PiecewiseLinearRPF",
    "LinearRPF",
    "NEGATIVE_INFINITY_UTILITY",
    "UtilityVector",
    "PlacementScore",
    "lex_explain",
    "Objective",
    "LexMaxMinObjective",
    "UtilitarianObjective",
    "resolve_objective",
    "AdmissionStrategy",
    "LRPFAdmission",
    "FCFSAdmission",
    "resolve_admission",
    "PlacementState",
    "AppDemand",
    "DensePlacement",
    "distribute_load",
    "LoadDistributionResult",
    "SpecArrays",
    "PlacementConstraint",
    "PinToNodes",
    "AntiCollocation",
    "Collocation",
    "MaxInstancesPerNode",
    "ConstraintSet",
    "ApplicationPlacementController",
    "APCConfig",
    "APCResult",
]
