"""Relative Performance Functions (RPFs).

An RPF measures an application's performance *relative to its goal*: it is
0 when the goal is exactly met, positive when the goal is exceeded, and
negative when it is violated (§3.2).  Equalizing relative performance
across applications therefore realizes the paper's notion of fairness —
all applications sit at the same relative distance from their goals.

For resource-allocation purposes every RPF is expressed as a function of
the CPU power allocated to the application, ``u_m(ω_m)``.  The placement
algorithm asks two questions of an RPF (§3.2, "Algorithm outline"):

1. What relative performance does the application achieve at a given
   allocation? — :meth:`RelativePerformanceFunction.utility`
2. How much CPU does the application need to reach a given relative
   performance? — :meth:`RelativePerformanceFunction.required_cpu`

Any *monotonically non-decreasing* model works (§3.2); the paper uses
linear functions of the performance metric, which become non-linear in the
allocation once the workload's performance model is composed in.
"""

from __future__ import annotations

import bisect
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

from repro.errors import ConfigurationError
from repro.units import EPSILON

#: Finite stand-in for the paper's ``u_1 = -inf`` sampling point.  Relative
#: performance is a *relative* distance from the goal, so a value of -50
#: means "50x the goal horizon late" — far beyond anything a sane system
#: produces, while keeping interpolation arithmetic finite.
NEGATIVE_INFINITY_UTILITY = -50.0

#: Upper bound of the relative-performance scale.  ``u = 1`` means the work
#: completed instantaneously (for batch) or with zero response time (for
#: transactional workloads).
MAX_UTILITY = 1.0


@runtime_checkable
class RelativePerformanceFunction(Protocol):
    """Protocol every workload-specific RPF implements.

    Implementations must be monotonically non-decreasing in the CPU
    allocation and saturate at :attr:`max_utility` for allocations at or
    above :attr:`saturation_cpu`.
    """

    def utility(self, cpu_mhz: float) -> float:
        """Relative performance achieved with ``cpu_mhz`` MHz allocated."""
        ...

    def required_cpu(self, utility: float) -> float:
        """CPU (MHz) needed to achieve ``utility``.

        Returns ``float('inf')`` when ``utility`` exceeds
        :attr:`max_utility` (no allocation reaches it).
        """
        ...

    @property
    def max_utility(self) -> float:
        """The highest achievable relative performance."""
        ...

    @property
    def saturation_cpu(self) -> float:
        """Smallest allocation achieving :attr:`max_utility`."""
        ...


class PiecewiseLinearRPF:
    """A generic RPF defined by ``(cpu, utility)`` sample points.

    Used directly in tests and as the carrier for the batch workload's
    sampled hypothetical relative performance.  Between samples the
    function interpolates linearly; below the first sample it clamps to the
    first utility; above the last sample it saturates.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ConfigurationError("piecewise-linear RPF needs >= 2 points")
        cpus = [p[0] for p in points]
        utils = [p[1] for p in points]
        if any(b - a < -EPSILON for a, b in zip(cpus, cpus[1:])):
            raise ConfigurationError("RPF sample CPUs must be non-decreasing")
        if any(b - a < -EPSILON for a, b in zip(utils, utils[1:])):
            raise ConfigurationError("RPF sample utilities must be non-decreasing")
        if cpus[0] < 0:
            raise ConfigurationError("RPF sample CPUs must be >= 0")
        self._cpus: List[float] = [float(c) for c in cpus]
        self._utils: List[float] = [float(u) for u in utils]

    @property
    def points(self) -> List[Tuple[float, float]]:
        """The defining sample points as ``(cpu, utility)`` pairs."""
        return list(zip(self._cpus, self._utils))

    @property
    def max_utility(self) -> float:
        return self._utils[-1]

    @property
    def saturation_cpu(self) -> float:
        # Walk back over any flat tail so we report the *smallest*
        # allocation that achieves max utility.
        i = len(self._utils) - 1
        while i > 0 and self._utils[i - 1] >= self._utils[-1] - EPSILON:
            i -= 1
        return self._cpus[i]

    def utility(self, cpu_mhz: float) -> float:
        cpus, utils = self._cpus, self._utils
        if cpu_mhz <= cpus[0]:
            return utils[0]
        if cpu_mhz >= cpus[-1]:
            return utils[-1]
        i = bisect.bisect_right(cpus, cpu_mhz)
        lo_c, hi_c = cpus[i - 1], cpus[i]
        lo_u, hi_u = utils[i - 1], utils[i]
        if hi_c - lo_c <= EPSILON:
            return hi_u
        frac = (cpu_mhz - lo_c) / (hi_c - lo_c)
        return lo_u + frac * (hi_u - lo_u)

    def required_cpu(self, utility: float) -> float:
        cpus, utils = self._cpus, self._utils
        if utility > self.max_utility + EPSILON:
            return float("inf")
        if utility <= utils[0]:
            return cpus[0]
        i = bisect.bisect_left(utils, utility)
        if i >= len(utils):
            i = len(utils) - 1
        lo_c, hi_c = cpus[i - 1], cpus[i]
        lo_u, hi_u = utils[i - 1], utils[i]
        if hi_u - lo_u <= EPSILON:
            return lo_c
        frac = (utility - lo_u) / (hi_u - lo_u)
        return lo_c + frac * (hi_c - lo_c)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PiecewiseLinearRPF({len(self._cpus)} points, max_u={self.max_utility:.3f})"


class LinearRPF:
    """``u(ω) = slope * ω + intercept`` capped at ``max_utility``.

    The simplest concrete RPF; convenient for unit tests and analytic
    examples (such as the introduction's "response time proportional to the
    inverse of allocated capacity" thought experiment, once linearized).
    """

    def __init__(self, slope: float, intercept: float, max_utility: float = MAX_UTILITY):
        if slope <= 0:
            raise ConfigurationError(f"slope must be positive, got {slope}")
        if max_utility < intercept:
            raise ConfigurationError(
                f"max_utility {max_utility} below utility at zero allocation {intercept}"
            )
        self._slope = slope
        self._intercept = intercept
        self._max_utility = max_utility

    @property
    def max_utility(self) -> float:
        return self._max_utility

    @property
    def saturation_cpu(self) -> float:
        return (self._max_utility - self._intercept) / self._slope

    def utility(self, cpu_mhz: float) -> float:
        return min(self._max_utility, self._slope * cpu_mhz + self._intercept)

    def required_cpu(self, utility: float) -> float:
        if utility > self._max_utility + EPSILON:
            return float("inf")
        if utility <= self._intercept:
            return 0.0
        return (utility - self._intercept) / self._slope
