"""Placement constraints.

§3.2: "While finding the optimal placement, APC also observes a number of
constraints, such as resource constraints, collocation constraints and
application pinning, amongst others."  Resource constraints (memory, CPU)
are enforced structurally by :class:`~repro.core.placement.PlacementState`;
this module provides the policy-level constraints as pluggable predicates.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Protocol, runtime_checkable

from repro.core.placement import PlacementState


@runtime_checkable
class PlacementConstraint(Protocol):
    """A predicate over a candidate instance placement.

    ``allows(state, app_id, node)`` answers: may one more instance of
    ``app_id`` be placed on ``node`` given the (partial) placement
    ``state``?  Constraints must be monotone in removals — removing an
    instance never turns an allowed placement into a forbidden one — which
    the search algorithm relies on when it explores removals.
    """

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        ...


class PinToNodes:
    """Restrict an application to an explicit set of allowed nodes."""

    def __init__(self, app_id: str, nodes: Iterable[str]) -> None:
        self.app_id = app_id
        self.nodes: FrozenSet[str] = frozenset(nodes)

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        if app_id != self.app_id:
            return True
        return node in self.nodes

    def __repr__(self) -> str:
        return f"PinToNodes({self.app_id!r}, {sorted(self.nodes)!r})"


class AntiCollocation:
    """Forbid two applications from sharing a node.

    Typical uses: availability (replicas of the same service on distinct
    failure domains) or licensing.
    """

    def __init__(self, app_a: str, app_b: str) -> None:
        self.app_a = app_a
        self.app_b = app_b

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        if app_id == self.app_a:
            other = self.app_b
        elif app_id == self.app_b:
            other = self.app_a
        else:
            return True
        return state.instances(other).get(node, 0) == 0

    def __repr__(self) -> str:
        return f"AntiCollocation({self.app_a!r}, {self.app_b!r})"


class Collocation:
    """Require an application's instances to land only where another
    application already runs (affinity).

    Typical use: a cache sidecar that must share a node with the service
    it accelerates.  The dependent application can only be placed on
    nodes hosting the anchor; the anchor itself is unconstrained.
    """

    def __init__(self, dependent: str, anchor: str) -> None:
        if dependent == anchor:
            raise ValueError("an application cannot be collocated with itself")
        self.dependent = dependent
        self.anchor = anchor

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        if app_id != self.dependent:
            return True
        return state.instances(self.anchor).get(node, 0) > 0

    def __repr__(self) -> str:
        return f"Collocation({self.dependent!r} -> {self.anchor!r})"


class MaxInstancesPerNode:
    """Cap the number of instances of one application per node.

    Transactional application clusters place at most one instance per node
    in the paper's system (the application-server model); that is the
    default cap.
    """

    def __init__(self, app_id: str, limit: int = 1) -> None:
        self.app_id = app_id
        self.limit = limit

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        if app_id != self.app_id:
            return True
        return state.instances(app_id).get(node, 0) < self.limit

    def __repr__(self) -> str:
        return f"MaxInstancesPerNode({self.app_id!r}, {self.limit})"


class ConstraintSet:
    """Conjunction of placement constraints, indexed for fast checks."""

    def __init__(self, constraints: Iterable[PlacementConstraint] = ()) -> None:
        self._constraints: List[PlacementConstraint] = list(constraints)

    def add(self, constraint: PlacementConstraint) -> None:
        self._constraints.append(constraint)

    def allows(self, state: PlacementState, app_id: str, node: str) -> bool:
        """True iff every constraint admits one more ``app_id`` instance
        on ``node``."""
        return all(c.allows(state, app_id, node) for c in self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def __repr__(self) -> str:
        return f"ConstraintSet({self._constraints!r})"
