"""The optimization objective: a maxmin extension over utility vectors.

The performance of the system under a candidate placement is the vector of
per-application relative performance values *sorted ascending* (§3.2).
Two placements are compared lexicographically on these sorted vectors:
first maximize the worst application's relative performance; when the
worst cannot be improved, maximize the second worst; and so on.  This is
the paper's "extension of a maxmin criterion".

Ties on the utility vector are broken by the number of placement changes —
the controller "employs heuristics that aim to minimize the number of
changes to the current placement", which is also why, in the illustrative
example's Scenario 1, the no-change alternative wins among equal-utility
placements.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Type, Union

import numpy as np

from repro._compat import keyword_only
from repro.errors import ConfigurationError
from repro.units import EPSILON

#: Vector length from which the numpy kernels take over sorting and
#: comparison.  Below it, plain python wins (array-conversion overhead);
#: results are identical either way (stable sorts, same elementwise
#: float comparisons), so the threshold is purely a speed knob.
_VECTOR_MIN_LEN = 512


def _first_decisive(
    a: Tuple[float, ...], b: Tuple[float, ...], tolerance: float
) -> Tuple[Optional[int], int]:
    """Array kernel shared by :func:`_lex_compare` and
    :func:`lex_explain`: the first position where the vectors differ by
    more than the tolerance, with the sign of that difference.

    Returns ``(index, sign)``; ``(None, 0)`` when every overlapping
    element ties.  Identical to the scalar scan: the elementwise
    comparisons are the same float operations, and ``argmax`` on the
    "decisive" mask yields the first hit — exactly where the scalar
    loop would have returned.
    """
    n = min(len(a), len(b))
    lhs = np.array(a[:n])
    rhs = np.array(b[:n])
    lower = lhs < rhs - tolerance
    higher = lhs > rhs + tolerance
    decisive = lower | higher
    index = int(np.argmax(decisive))
    if not decisive[index]:
        return None, 0
    return index, -1 if lower[index] else 1


@functools.lru_cache(maxsize=65536)
def _lex_compare(
    a: Tuple[float, ...], b: Tuple[float, ...], tolerance: float
) -> int:
    """Tolerant lexicographic comparison of two sorted value tuples.

    Returns -1 (``a < b``), 0 (element-wise tie over equal lengths) or 1.
    Pure in its arguments, so results are shared across the controller's
    repeated comparisons of the same candidate vectors.  Long vectors go
    through the array kernel; the answer is the same either way.
    """
    if min(len(a), len(b)) >= _VECTOR_MIN_LEN:
        _, sign = _first_decisive(a, b, tolerance)
        if sign:
            return sign
    else:
        for x, y in zip(a, b):
            if x < y - tolerance:
                return -1
            if x > y + tolerance:
                return 1
    if len(a) != len(b):
        return -1 if len(a) < len(b) else 1
    return 0


def lex_explain(
    candidate: "UtilityVector",
    incumbent: "UtilityVector",
    vectorize: Optional[bool] = None,
) -> dict:
    """Explain a lexicographic comparison for the decision flight recorder.

    Mirrors :func:`_lex_compare` exactly (same tolerance resolution as the
    rich comparisons) but additionally reports *which* vector element
    decided the outcome.  Returns a JSON-friendly dict::

        {"result": -1 | 0 | 1,          # candidate vs. incumbent
         "index": int | None,           # deciding position in the sorted
                                        # vectors (None = tie / length)
         "candidate": float | None,     # value at that position
         "incumbent": float | None,
         "tolerance": float}

    ``vectorize`` forces the array kernel on (True) or off (False);
    ``None`` picks by vector length.  The reported values are always
    read back from the python tuples, so the dict — including its JSON
    serialization — is identical on both paths (pinned by test).
    """
    tol = max(candidate.tolerance, incumbent.tolerance)
    a, b = candidate.values, incumbent.values
    if vectorize is None:
        vectorize = min(len(a), len(b)) >= _VECTOR_MIN_LEN
    if vectorize and a and b:
        index, sign = _first_decisive(a, b, tol)
        if sign:
            return {"result": sign, "index": index, "candidate": a[index],
                    "incumbent": b[index], "tolerance": tol}
    else:
        for i, (x, y) in enumerate(zip(a, b)):
            if x < y - tol:
                return {"result": -1, "index": i, "candidate": x,
                        "incumbent": y, "tolerance": tol}
            if x > y + tol:
                return {"result": 1, "index": i, "candidate": x,
                        "incumbent": y, "tolerance": tol}
    if len(a) != len(b):
        return {"result": -1 if len(a) < len(b) else 1, "index": None,
                "candidate": None, "incumbent": None, "tolerance": tol}
    return {"result": 0, "index": None, "candidate": None,
            "incumbent": None, "tolerance": tol}


@functools.total_ordering
class UtilityVector:
    """An ascending-sorted vector of relative performance values.

    Comparison is lexicographic with a per-element tolerance, so vectors
    whose elements differ only by noise compare equal.  The tolerance is
    configurable because it doubles as the controller's *significance
    threshold*: a candidate placement whose utilities differ from the
    incumbent's by less than the tolerance is a tie, and ties never
    justify placement changes (predicted utilities come from a sampled
    interpolation — §4.2 — so sub-tolerance differences are model noise,
    not real improvements).

    A longer prefix-equal vector compares *greater* than a shorter one
    only through its extra elements; in practice the controller always
    compares vectors over the same application set, so lengths match.
    """

    __slots__ = ("_values", "_tolerance")

    def __init__(self, utilities: Iterable[float], tolerance: float = EPSILON) -> None:
        values = list(utilities)
        if len(values) >= _VECTOR_MIN_LEN:
            # Stable, like python's sort: equal floats keep their input
            # order, so the resulting tuple is bitwise the same.
            self._values: Tuple[float, ...] = tuple(
                np.sort(np.array(values), kind="stable").tolist()
            )
        else:
            self._values = tuple(sorted(values))
        self._tolerance = tolerance

    @classmethod
    def of(
        cls, per_app: Mapping[str, float], tolerance: float = EPSILON
    ) -> "UtilityVector":
        """Build from a mapping of application id to relative performance."""
        return cls(per_app.values(), tolerance=tolerance)

    @property
    def tolerance(self) -> float:
        return self._tolerance

    @property
    def values(self) -> Tuple[float, ...]:
        """The sorted utilities."""
        return self._values

    @property
    def worst(self) -> float:
        """The lowest relative performance (the maxmin objective)."""
        if not self._values:
            return float("inf")
        return self._values[0]

    def __len__(self) -> int:
        return len(self._values)

    def _shared_tolerance(self, other: "UtilityVector") -> float:
        return max(self._tolerance, other._tolerance)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UtilityVector):
            return NotImplemented
        if len(self._values) != len(other._values):
            return False
        tol = self._shared_tolerance(other)
        return _lex_compare(self._values, other._values, tol) == 0

    def __lt__(self, other: "UtilityVector") -> bool:
        if not isinstance(other, UtilityVector):
            return NotImplemented
        tol = self._shared_tolerance(other)
        return _lex_compare(self._values, other._values, tol) == -1

    def __hash__(self) -> int:
        # Consistent with __eq__ only up to epsilon; UtilityVector is not
        # intended as a dict key, but hashability keeps it usable in sets
        # of exact duplicates (e.g. memoized candidate scores).
        return hash(tuple(round(v, 6) for v in self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:.3f}" for v in self._values)
        return f"UtilityVector([{inner}])"


@functools.total_ordering
class PlacementScore:
    """A candidate placement's full score: utility vector, then churn.

    ``a > b`` means placement ``a`` is preferable: its utility vector is
    lexicographically greater, or the vectors tie and ``a`` requires fewer
    placement changes.
    """

    __slots__ = ("utilities", "num_changes")

    def __init__(self, utilities: UtilityVector, num_changes: int = 0) -> None:
        self.utilities = utilities
        self.num_changes = num_changes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        return (
            self.utilities == other.utilities
            and self.num_changes == other.num_changes
        )

    def __lt__(self, other: "PlacementScore") -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        if self.utilities != other.utilities:
            return self.utilities < other.utilities
        # Equal utility vectors: more churn is worse.
        return self.num_changes > other.num_changes

    def __repr__(self) -> str:
        return f"PlacementScore({self.utilities!r}, changes={self.num_changes})"


# ----------------------------------------------------------------------
# Pluggable objectives
# ----------------------------------------------------------------------
#: Objective name -> class, filled by :func:`register_objective`.
OBJECTIVES: Dict[str, Type["Objective"]] = {}


def register_objective(cls: Type["Objective"]) -> Type["Objective"]:
    """Class decorator: make an :class:`Objective` resolvable by name."""
    OBJECTIVES[cls.name] = cls
    return cls


class Objective:
    """How the placement controller ranks candidate placements.

    The controller evaluates each candidate into per-application
    utilities and a churn count; the objective turns those into a
    :class:`PlacementScore` (:meth:`score`), decides whether a candidate
    beats the incumbent (:meth:`better`), and explains that comparison
    for the decision flight recorder (:meth:`explain`).

    Implementations are keyword-only dataclasses registered by name
    (:func:`register_objective`) and JSON-round-trippable through
    :meth:`to_dict` / :meth:`from_dict`, so a scenario can select one
    declaratively (``policy_params={"objective": "utilitarian"}``).

    ``supports_upper_bound`` gates the controller's sorted-RPF-maxima
    short-circuit, whose soundness argument is specific to the paper's
    lexicographic ordering; objectives that rank differently leave it
    False and simply forgo the shortcut (decisions are unaffected).
    """

    #: Registry key; subclasses override.
    name = "objective"
    #: Whether the RPF-maxima upper-bound short-circuit is sound.
    supports_upper_bound = False

    def score(
        self,
        utilities: Mapping[str, float],
        churn: int,
        tolerance: float,
    ) -> PlacementScore:
        """Score one evaluated candidate placement."""
        raise NotImplementedError

    def better(
        self, candidate: PlacementScore, incumbent: PlacementScore
    ) -> bool:
        """Does ``candidate`` justify replacing ``incumbent``?

        The default requires a strict utility-vector improvement — a tie
        never justifies churn, matching the paper's adoption rule.
        """
        return candidate.utilities > incumbent.utilities

    def explain(
        self, candidate: PlacementScore, incumbent: PlacementScore
    ) -> dict:
        """A JSON-friendly account of :meth:`better`'s comparison."""
        return lex_explain(candidate.utilities, incumbent.utilities)

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-serializable representation (round-trips through
        :meth:`from_dict`)."""
        out: Dict[str, object] = {"name": self.name}
        if dataclasses.is_dataclass(self):
            for f in dataclasses.fields(self):
                out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Objective":
        """Build a registered objective from a plain dict (inverse of
        :meth:`to_dict`); unknown names and keys are rejected."""
        payload = dict(data)
        name = payload.pop("name", None)
        target = OBJECTIVES.get(name)  # type: ignore[arg-type]
        if target is None:
            raise ConfigurationError(
                f"unknown objective {name!r}; expected one of "
                f"{sorted(OBJECTIVES)}"
            )
        known = {f.name for f in dataclasses.fields(target)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown {target.__name__} keys: {sorted(unknown)}"
            )
        return target(**payload)


ObjectiveLike = Union[None, str, Mapping[str, object], Objective]


def resolve_objective(spec: ObjectiveLike) -> Objective:
    """Coerce ``None`` (the paper's default), a registry name, a config
    dict, or an :class:`Objective` instance into an objective."""
    if spec is None:
        return LexMaxMinObjective()
    if isinstance(spec, Objective):
        return spec
    if isinstance(spec, str):
        return Objective.from_dict({"name": spec})
    if isinstance(spec, Mapping):
        return Objective.from_dict(spec)
    raise ConfigurationError(
        f"cannot resolve an objective from {type(spec).__name__}"
    )


@register_objective
@keyword_only
@dataclass
class LexMaxMinObjective(Objective):
    """The paper's objective: tolerant lexicographic maxmin (§3.2).

    Byte-identical to the controller's historical hardwired scoring:
    the sorted utility vector compared lexicographically with the
    evaluation tolerance, ties broken by churn.  ``tolerance_override``
    replaces the controller-supplied comparison tolerance when set
    (``None``, the default, preserves the stock behavior exactly).
    """

    name = "lex_maxmin"
    supports_upper_bound = True

    tolerance_override: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            self.tolerance_override is not None
            and self.tolerance_override < 0.0
        ):
            raise ConfigurationError(
                f"tolerance override must be >= 0, got {self.tolerance_override}"
            )

    def score(
        self,
        utilities: Mapping[str, float],
        churn: int,
        tolerance: float,
    ) -> PlacementScore:
        tol = (
            tolerance
            if self.tolerance_override is None
            else self.tolerance_override
        )
        return PlacementScore(
            UtilityVector(utilities.values(), tolerance=tol), churn
        )


@register_objective
@keyword_only
@dataclass
class UtilitarianObjective(Objective):
    """A rival objective: rank by aggregate utility, not the worst app.

    The score vector is the single value ``(1 - worst_weight) * mean +
    worst_weight * worst`` — pure utilitarian at the default weight 0,
    blending back toward the paper's egalitarian objective as the
    weight approaches 1.  Exists to exercise the extension point (and
    ablate the maxmin choice); it deliberately trades fairness for
    throughput.
    """

    name = "utilitarian"

    worst_weight: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.worst_weight <= 1.0:
            raise ConfigurationError(
                f"worst weight must be in [0, 1], got {self.worst_weight}"
            )

    def score(
        self,
        utilities: Mapping[str, float],
        churn: int,
        tolerance: float,
    ) -> PlacementScore:
        values = list(utilities.values())
        if not values:
            return PlacementScore(UtilityVector((), tolerance=tolerance), churn)
        mean = sum(values) / len(values)
        blended = (1.0 - self.worst_weight) * mean + self.worst_weight * min(
            values
        )
        return PlacementScore(
            UtilityVector((blended,), tolerance=tolerance), churn
        )
