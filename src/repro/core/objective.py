"""The optimization objective: a maxmin extension over utility vectors.

The performance of the system under a candidate placement is the vector of
per-application relative performance values *sorted ascending* (§3.2).
Two placements are compared lexicographically on these sorted vectors:
first maximize the worst application's relative performance; when the
worst cannot be improved, maximize the second worst; and so on.  This is
the paper's "extension of a maxmin criterion".

Ties on the utility vector are broken by the number of placement changes —
the controller "employs heuristics that aim to minimize the number of
changes to the current placement", which is also why, in the illustrative
example's Scenario 1, the no-change alternative wins among equal-utility
placements.
"""

from __future__ import annotations

import functools
from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.units import EPSILON

#: Vector length from which the numpy kernels take over sorting and
#: comparison.  Below it, plain python wins (array-conversion overhead);
#: results are identical either way (stable sorts, same elementwise
#: float comparisons), so the threshold is purely a speed knob.
_VECTOR_MIN_LEN = 512


def _first_decisive(
    a: Tuple[float, ...], b: Tuple[float, ...], tolerance: float
) -> Tuple[Optional[int], int]:
    """Array kernel shared by :func:`_lex_compare` and
    :func:`lex_explain`: the first position where the vectors differ by
    more than the tolerance, with the sign of that difference.

    Returns ``(index, sign)``; ``(None, 0)`` when every overlapping
    element ties.  Identical to the scalar scan: the elementwise
    comparisons are the same float operations, and ``argmax`` on the
    "decisive" mask yields the first hit — exactly where the scalar
    loop would have returned.
    """
    n = min(len(a), len(b))
    lhs = np.array(a[:n])
    rhs = np.array(b[:n])
    lower = lhs < rhs - tolerance
    higher = lhs > rhs + tolerance
    decisive = lower | higher
    index = int(np.argmax(decisive))
    if not decisive[index]:
        return None, 0
    return index, -1 if lower[index] else 1


@functools.lru_cache(maxsize=65536)
def _lex_compare(
    a: Tuple[float, ...], b: Tuple[float, ...], tolerance: float
) -> int:
    """Tolerant lexicographic comparison of two sorted value tuples.

    Returns -1 (``a < b``), 0 (element-wise tie over equal lengths) or 1.
    Pure in its arguments, so results are shared across the controller's
    repeated comparisons of the same candidate vectors.  Long vectors go
    through the array kernel; the answer is the same either way.
    """
    if min(len(a), len(b)) >= _VECTOR_MIN_LEN:
        _, sign = _first_decisive(a, b, tolerance)
        if sign:
            return sign
    else:
        for x, y in zip(a, b):
            if x < y - tolerance:
                return -1
            if x > y + tolerance:
                return 1
    if len(a) != len(b):
        return -1 if len(a) < len(b) else 1
    return 0


def lex_explain(
    candidate: "UtilityVector",
    incumbent: "UtilityVector",
    vectorize: Optional[bool] = None,
) -> dict:
    """Explain a lexicographic comparison for the decision flight recorder.

    Mirrors :func:`_lex_compare` exactly (same tolerance resolution as the
    rich comparisons) but additionally reports *which* vector element
    decided the outcome.  Returns a JSON-friendly dict::

        {"result": -1 | 0 | 1,          # candidate vs. incumbent
         "index": int | None,           # deciding position in the sorted
                                        # vectors (None = tie / length)
         "candidate": float | None,     # value at that position
         "incumbent": float | None,
         "tolerance": float}

    ``vectorize`` forces the array kernel on (True) or off (False);
    ``None`` picks by vector length.  The reported values are always
    read back from the python tuples, so the dict — including its JSON
    serialization — is identical on both paths (pinned by test).
    """
    tol = max(candidate.tolerance, incumbent.tolerance)
    a, b = candidate.values, incumbent.values
    if vectorize is None:
        vectorize = min(len(a), len(b)) >= _VECTOR_MIN_LEN
    if vectorize and a and b:
        index, sign = _first_decisive(a, b, tol)
        if sign:
            return {"result": sign, "index": index, "candidate": a[index],
                    "incumbent": b[index], "tolerance": tol}
    else:
        for i, (x, y) in enumerate(zip(a, b)):
            if x < y - tol:
                return {"result": -1, "index": i, "candidate": x,
                        "incumbent": y, "tolerance": tol}
            if x > y + tol:
                return {"result": 1, "index": i, "candidate": x,
                        "incumbent": y, "tolerance": tol}
    if len(a) != len(b):
        return {"result": -1 if len(a) < len(b) else 1, "index": None,
                "candidate": None, "incumbent": None, "tolerance": tol}
    return {"result": 0, "index": None, "candidate": None,
            "incumbent": None, "tolerance": tol}


@functools.total_ordering
class UtilityVector:
    """An ascending-sorted vector of relative performance values.

    Comparison is lexicographic with a per-element tolerance, so vectors
    whose elements differ only by noise compare equal.  The tolerance is
    configurable because it doubles as the controller's *significance
    threshold*: a candidate placement whose utilities differ from the
    incumbent's by less than the tolerance is a tie, and ties never
    justify placement changes (predicted utilities come from a sampled
    interpolation — §4.2 — so sub-tolerance differences are model noise,
    not real improvements).

    A longer prefix-equal vector compares *greater* than a shorter one
    only through its extra elements; in practice the controller always
    compares vectors over the same application set, so lengths match.
    """

    __slots__ = ("_values", "_tolerance")

    def __init__(self, utilities: Iterable[float], tolerance: float = EPSILON) -> None:
        values = list(utilities)
        if len(values) >= _VECTOR_MIN_LEN:
            # Stable, like python's sort: equal floats keep their input
            # order, so the resulting tuple is bitwise the same.
            self._values: Tuple[float, ...] = tuple(
                np.sort(np.array(values), kind="stable").tolist()
            )
        else:
            self._values = tuple(sorted(values))
        self._tolerance = tolerance

    @classmethod
    def of(
        cls, per_app: Mapping[str, float], tolerance: float = EPSILON
    ) -> "UtilityVector":
        """Build from a mapping of application id to relative performance."""
        return cls(per_app.values(), tolerance=tolerance)

    @property
    def tolerance(self) -> float:
        return self._tolerance

    @property
    def values(self) -> Tuple[float, ...]:
        """The sorted utilities."""
        return self._values

    @property
    def worst(self) -> float:
        """The lowest relative performance (the maxmin objective)."""
        if not self._values:
            return float("inf")
        return self._values[0]

    def __len__(self) -> int:
        return len(self._values)

    def _shared_tolerance(self, other: "UtilityVector") -> float:
        return max(self._tolerance, other._tolerance)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UtilityVector):
            return NotImplemented
        if len(self._values) != len(other._values):
            return False
        tol = self._shared_tolerance(other)
        return _lex_compare(self._values, other._values, tol) == 0

    def __lt__(self, other: "UtilityVector") -> bool:
        if not isinstance(other, UtilityVector):
            return NotImplemented
        tol = self._shared_tolerance(other)
        return _lex_compare(self._values, other._values, tol) == -1

    def __hash__(self) -> int:
        # Consistent with __eq__ only up to epsilon; UtilityVector is not
        # intended as a dict key, but hashability keeps it usable in sets
        # of exact duplicates (e.g. memoized candidate scores).
        return hash(tuple(round(v, 6) for v in self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:.3f}" for v in self._values)
        return f"UtilityVector([{inner}])"


@functools.total_ordering
class PlacementScore:
    """A candidate placement's full score: utility vector, then churn.

    ``a > b`` means placement ``a`` is preferable: its utility vector is
    lexicographically greater, or the vectors tie and ``a`` requires fewer
    placement changes.
    """

    __slots__ = ("utilities", "num_changes")

    def __init__(self, utilities: UtilityVector, num_changes: int = 0) -> None:
        self.utilities = utilities
        self.num_changes = num_changes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        return (
            self.utilities == other.utilities
            and self.num_changes == other.num_changes
        )

    def __lt__(self, other: "PlacementScore") -> bool:
        if not isinstance(other, PlacementScore):
            return NotImplemented
        if self.utilities != other.utilities:
            return self.utilities < other.utilities
        # Equal utility vectors: more churn is worse.
        return self.num_changes > other.num_changes

    def __repr__(self) -> str:
        return f"PlacementScore({self.utilities!r}, changes={self.num_changes})"
