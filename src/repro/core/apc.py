"""The Application Placement Controller (APC).

§3.2: every control cycle the APC "examines the placement of applications
on nodes and their resource allocations, evaluates the relative
performance of this allocation and makes changes to the allocation by
starting, stopping, suspending, resuming, relocating or changing CPU
share configuration of some applications".

The optimization objective is the maxmin extension over per-application
relative performance (see :mod:`repro.core.objective`), subject to node
memory/CPU capacities and placement constraints, with a secondary goal of
minimizing placement changes.

The placement problem is NP-hard; the search is the three-nested-loop
heuristic of [18] (Carrera et al., NOMS 2008):

* the **outer loop** iterates over nodes;
* the **intermediate loop** iterates over the application instances
  placed on the node and removes them one by one (cumulatively),
  generating a set of candidate configurations linear in the number of
  instances on the node — instances of the *highest*-utility applications
  are removed first (they can best afford to lose resources);
* the **inner loop** iterates over applications, attempting to place new
  instances on the node as permitted by the constraints — applications
  are visited lowest-relative-performance first (the paper's LRPF
  ordering), so the neediest work is considered first.

Each candidate configuration is scored by running the load-distribution
optimizer (:mod:`repro.core.loadbalance`) and the workload models'
predictors; it is adopted only if the global utility vector strictly
improves (ties never justify churn — which is exactly why, in the
illustrative example's Scenario 1, the controller leaves J1 running
alone, and why Experiment One's identical-job workload sees zero
placement changes).

Before the full search the controller runs a cheap **greedy admission
pass** that places queued/unplaced applications into free capacity in
LRPF order.  When no removal-based improvement is possible — detected by
comparing unplaced candidates' best-achievable relative performance
against placed applications' current predictions — the search is skipped
entirely.  This is the "internal shortcut" the paper observes: "when all
submitted jobs can be placed concurrently, the algorithm is able to take
internal shortcuts, resulting in a significant reduction in execution
time" (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import Cluster
from repro.core.constraints import ConstraintSet
from repro.core.loadbalance import AllocatableApp, distribute_load
from repro.core.objective import PlacementScore, UtilityVector
from repro.core.placement import PlacementState
from repro.core.workload import WorkloadModel
from repro.errors import ConfigurationError, PlacementError
from repro.obs.spans import NULL_SPAN, SpanProfiler
from repro.units import EPSILON
from repro.virt.actions import diff_placements


@dataclass
class APCConfig:
    """Tunables of the placement controller.

    Attributes
    ----------
    cycle_length:
        Control cycle period ``T`` in seconds (§3.1: "of the order of
        minutes"; Experiment One uses 600 s).
    max_removals_per_node:
        Cap on the intermediate loop's cumulative removals per node
        (``None`` = all instances on the node may be considered).
    search_sweeps:
        Number of outer-loop sweeps over all nodes per cycle.
    improvement_epsilon:
        Minimum per-element utility-vector improvement that justifies a
        change; below this, candidates are treated as ties (and ties
        never justify churn).  The default, 0.02, matches the paper's
        reporting granularity for the illustrative example — Scenario 1's
        alternatives (exactly: 0.6875 vs 0.6955) are reported as the tie
        "0.7 vs 0.7" and resolved in favor of no change.
    preemption_penalty:
        Extra utility-vector improvement a candidate must show when it
        *suspends or relocates* running instances.  The hypothetical
        predictor has one-cycle lookahead: swapping a queued job for a
        running one of the same class always shows a transient gain of
        ``T / relative_goal`` (the queued job's achievable performance
        stops eroding for one cycle) even though the true completion-time
        vector cannot improve — the paper proves this for identical jobs
        (§5.1) and indeed observes zero changes.  Requiring preemptive
        configs to beat the incumbent by this margin suppresses those
        illusory swaps while preserving genuine urgency-driven
        preemption (a tight-goal job's erosion rate is many times
        larger).  This realizes the paper's "heuristics that aim to
        minimize the number of changes to the current placement" (§3.2).
    enable_search:
        When False only the greedy admission pass runs (useful for
        ablations; the full paper algorithm keeps it True).
    """

    cycle_length: float = 600.0
    max_removals_per_node: Optional[int] = None
    search_sweeps: int = 1
    improvement_epsilon: float = 0.02
    preemption_penalty: float = 0.05
    enable_search: bool = True

    def __post_init__(self) -> None:
        if self.cycle_length <= 0:
            raise ConfigurationError(f"cycle length must be positive, got {self.cycle_length}")
        if self.search_sweeps < 0:
            raise ConfigurationError(f"search sweeps must be >= 0, got {self.search_sweeps}")
        if self.max_removals_per_node is not None and self.max_removals_per_node < 0:
            raise ConfigurationError("max removals per node must be >= 0 or None")


@dataclass
class APCResult:
    """Outcome of one control cycle's placement computation."""

    #: The chosen placement with its load matrix filled in.
    state: PlacementState
    #: Total CPU granted per placed application.
    allocations: Dict[str, float] = field(default_factory=dict)
    #: Predicted relative performance for every application (incl. unplaced).
    utilities: Dict[str, float] = field(default_factory=dict)
    #: Score of the chosen placement (vs. the cycle's starting placement).
    score: Optional[PlacementScore] = None
    #: Number of candidate placements fully evaluated.
    evaluations: int = 0
    #: Whether the chosen placement differs from the starting one.
    changed: bool = False

    @property
    def utility_vector(self) -> UtilityVector:
        return UtilityVector(self.utilities.values())


class ApplicationPlacementController:
    """Searches for the best placement each control cycle."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[APCConfig] = None,
        constraints: Optional[ConstraintSet] = None,
        profiler: Optional[SpanProfiler] = None,
    ) -> None:
        self._cluster = cluster
        self._config = config or APCConfig()
        self._constraints = constraints or ConstraintSet()
        self._profiler = profiler

    @property
    def config(self) -> APCConfig:
        return self._config

    @property
    def constraints(self) -> ConstraintSet:
        return self._constraints

    @property
    def profiler(self) -> Optional[SpanProfiler]:
        return self._profiler

    def _span(self, name: str, **attrs: object):
        """A profiler span, or the shared no-op when un-instrumented."""
        if self._profiler is None:
            return NULL_SPAN
        return self._profiler.span(name, **attrs)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def place(
        self,
        models: Sequence[WorkloadModel],
        current: PlacementState,
        now: float,
    ) -> APCResult:
        """Compute the placement for the control cycle starting at ``now``.

        ``current`` is the placement in effect; it is not mutated.  The
        returned state carries the new placement and load matrix.

        With a :class:`~repro.obs.spans.SpanProfiler` attached, the whole
        computation is one ``apc.place`` root span whose children break
        the cycle's decision time into phases: model spec merging
        (``apc.model_specs``), candidate evaluation (``apc.evaluate``,
        itself split into the load-balancing solve ``apc.loadbalance``,
        the workload models' hypothetical/RPF prediction ``apc.predict``,
        and objective scoring ``apc.objective``), the greedy admission
        pass (``apc.admission``), and the nested-loop search
        (``apc.search``).  Un-instrumented, the spans are no-ops and the
        computation is unchanged.
        """
        with self._span("apc.place"):
            return self._place_profiled(models, current, now)

    def _place_profiled(
        self,
        models: Sequence[WorkloadModel],
        current: PlacementState,
        now: float,
    ) -> APCResult:
        with self._span("apc.model_specs"):
            specs = self._merge_specs(models, now)
            candidates = self._merge_candidates(models, now)

        state = current.copy()
        self._prune_vanished(state, specs)
        self._prune_unavailable(state)
        self._refresh_demands(state, specs)
        baseline = state.as_matrix()

        evaluations = 0

        def evaluate(
            trial: PlacementState, tolerance: Optional[float] = None
        ) -> Tuple[PlacementScore, Dict[str, float], Dict[str, float]]:
            nonlocal evaluations
            evaluations += 1
            with self._span("apc.evaluate"):
                with self._span("apc.loadbalance"):
                    result = distribute_load(trial, specs)
                utilities: Dict[str, float] = {}
                with self._span("apc.predict"):
                    for model in models:
                        utilities.update(
                            model.evaluate(
                                result.allocations, now, self._config.cycle_length
                            )
                        )
                with self._span("apc.objective"):
                    removals, additions = diff_placements(
                        baseline, trial.as_matrix()
                    )
                    churn = sum(c for _, _, c in removals) + sum(
                        c for _, _, c in additions
                    )
                    score = PlacementScore(
                        UtilityVector(
                            utilities.values(),
                            tolerance=(
                                self._config.improvement_epsilon
                                if tolerance is None
                                else tolerance
                            ),
                        ),
                        churn,
                    )
            return score, utilities, result.allocations

        best_state = state
        best_score, best_utilities, best_allocations = evaluate(best_state)

        # ---- greedy admission pass --------------------------------------
        # Adoption always requires a *strict* utility-vector improvement:
        # a tie never justifies touching the placement (the illustrative
        # example's Scenario 1 — the equal-utility alternative that
        # starts J2 is rejected because it requires a change).
        with self._span("apc.admission"):
            trial = best_state.copy()
            placed_any = self._greedy_admit(trial, specs, candidates, best_utilities)
            if placed_any:
                score, utilities, allocations = evaluate(trial)
                if score.utilities > best_score.utilities:
                    best_state, best_score = trial, score
                    best_utilities, best_allocations = utilities, allocations

        # ---- full nested-loop search ------------------------------------
        if self._config.enable_search and self._search_is_worthwhile(
            best_state, specs, candidates, best_utilities, best_allocations
        ):
            with self._span("apc.search"):
                for _ in range(self._config.search_sweeps):
                    (
                        improved,
                        best_state,
                        best_score,
                        best_utilities,
                        best_allocations,
                    ) = self._sweep(
                        best_state,
                        best_score,
                        best_utilities,
                        best_allocations,
                        specs,
                        candidates,
                        evaluate,
                    )
                    if not improved:
                        break

        changed = best_state.as_matrix() != baseline
        return APCResult(
            state=best_state,
            allocations=best_allocations,
            utilities=best_utilities,
            score=best_score,
            evaluations=evaluations,
            changed=changed,
        )

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _merge_specs(
        self, models: Sequence[WorkloadModel], now: float
    ) -> Dict[str, AllocatableApp]:
        specs: Dict[str, AllocatableApp] = {}
        for model in models:
            for app_id, spec in model.app_specs(now).items():
                if app_id in specs:
                    raise PlacementError(
                        f"application id {app_id!r} provided by multiple models"
                    )
                specs[app_id] = spec
        return specs

    def _merge_candidates(
        self, models: Sequence[WorkloadModel], now: float
    ) -> List[str]:
        out: List[str] = []
        for model in models:
            out.extend(model.placement_candidates(now))
        return out

    @staticmethod
    def _prune_vanished(state: PlacementState, specs: Mapping[str, AllocatableApp]) -> None:
        """Remove instances of applications no longer under management
        (completed jobs, deregistered apps)."""
        for app_id in list(state.app_ids):
            if app_id not in specs:
                for node, count in state.instances(app_id).items():
                    state.remove(app_id, node, count)

    @staticmethod
    def _prune_unavailable(state: PlacementState) -> None:
        """Drop instances stranded on unavailable nodes.

        The simulator evicts placements when a node fails, but the
        controller defends in depth: planning must start from capacity
        that actually exists, however the state it was handed came to be
        (a failed actuator action's fallback, an externally maintained
        placement, ...).  Dropped applications become candidates again
        this same cycle.
        """
        for node in state.cluster:
            if node.available:
                continue
            for app_id in list(state.apps_on(node.name)):
                count = state.instances(app_id).get(node.name, 0)
                if count:
                    state.remove(app_id, node.name, count)

    @staticmethod
    def _refresh_demands(
        state: PlacementState, specs: Mapping[str, AllocatableApp]
    ) -> None:
        """Re-apply current memory demands to carried-over instances.

        A multi-stage job's memory requirement (``γ_k``) changes across
        stage boundaries (§4.1).  Instances are re-placed with the
        current demand; an instance whose grown footprint no longer fits
        its node is removed (the admission/search passes will try to
        place the application elsewhere this same cycle).
        """
        from repro.errors import CapacityError

        for app_id in list(state.app_ids):
            spec = specs.get(app_id)
            if spec is None:
                continue
            recorded = state.memory_demand_of(app_id)
            if recorded is None or abs(recorded - spec.demand.memory_mb) <= EPSILON:
                continue
            placements = state.instances(app_id)
            for node, count in placements.items():
                state.remove(app_id, node, count)
            state.forget_memory_demand(app_id)
            for node, count in placements.items():
                try:
                    state.place(app_id, node, spec.demand.memory_mb, count)
                except CapacityError:
                    pass  # evicted by its own growth; may be re-placed

    def _can_host(
        self,
        state: PlacementState,
        spec: AllocatableApp,
        node: str,
    ) -> bool:
        """Memory + min-CPU + policy check for one more instance."""
        demand = spec.demand
        if state.memory_available(node) + EPSILON < demand.memory_mb:
            return False
        if demand.max_instances is not None:
            if state.instance_count(demand.app_id) >= demand.max_instances:
                return False
        # Reserve minimum speeds: the sum of min speeds of instances on
        # the node (including the newcomer) must fit in CPU capacity.
        return self._constraints.allows(state, demand.app_id, node)

    def _min_cpu_fits(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        node: str,
        extra_min: float,
    ) -> bool:
        committed = extra_min
        for app_id in state.apps_on(node):
            spec = specs.get(app_id)
            if spec is None:
                continue
            committed += spec.demand.min_cpu_mhz * state.instances(app_id)[node]
        return committed <= self._cluster.node(node).cpu_capacity + EPSILON

    def _greedy_admit(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
    ) -> bool:
        """Place unplaced candidates into free capacity, LRPF first.

        Singleton applications (jobs) get one instance on the node with
        the most free CPU among those with room; divisible applications
        (web clusters) get an instance on *every* node that can host one —
        growing the cluster costs nothing at this stage and lets the load
        distributor use all available capacity.
        """
        placed_any = False
        unplaced = [c for c in candidates if not state.is_placed(c) and c in specs]
        unplaced.sort(key=lambda a: utilities.get(a, specs[a].rpf.max_utility))
        for app_id in unplaced:
            spec = specs[app_id]
            if spec.demand.divisible:
                for node in self._cluster.node_names:
                    if self._can_host(state, spec, node) and self._min_cpu_fits(
                        state, specs, node, spec.demand.min_cpu_mhz
                    ):
                        state.place(app_id, node, spec.demand.memory_mb)
                        placed_any = True
            else:
                hosts = [
                    n
                    for n in self._cluster.node_names
                    if self._can_host(state, spec, n)
                    and self._min_cpu_fits(state, specs, n, spec.demand.min_cpu_mhz)
                ]
                if hosts:
                    # Most free CPU first: spreads jobs and leaves room
                    # for each to reach its maximum speed.
                    target = max(hosts, key=lambda n: (state.cpu_available(n), -self._cluster.node_names.index(n)))
                    state.place(app_id, target, spec.demand.memory_mb)
                    placed_any = True
        return placed_any

    def _search_is_worthwhile(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
        allocations: Mapping[str, float],
    ) -> bool:
        """Skip the expensive search when no removal can pay off.

        A removal-based change must eventually clear the preemption
        penalty, so the search is only entered when either

        * some unplaced candidate's *best-case* relative performance if
          placed right now (its RPF maximum) exceeds its current
          prediction by more than the penalty — the headroom a swap could
          at most realize; with identical jobs this headroom is one
          cycle's goal erosion (``T / relative_goal``), below the
          penalty, which is why Experiment One skips the search entirely
          (the paper's "internal shortcuts"); or
        * some placed application is starved well below the best placed
          application while other nodes still have free CPU — a live
          migration could rebalance.
        """
        gate = max(
            self._config.preemption_penalty, self._config.improvement_epsilon
        )
        for candidate in candidates:
            if state.is_placed(candidate) or candidate not in specs:
                continue
            headroom = specs[candidate].rpf.max_utility - utilities.get(
                candidate, float("-inf")
            )
            if headroom > gate:
                return True

        placed_utilities = {
            a: utilities[a] for a in state.app_ids if a in utilities
        }
        if not placed_utilities:
            return any(
                not state.is_placed(c) for c in candidates if c in specs
            )
        best_placed = max(placed_utilities.values())
        for app_id, utility in placed_utilities.items():
            if utility >= best_placed - gate:
                continue
            spec = specs.get(app_id)
            if spec is None:
                continue
            allocated = allocations.get(app_id, 0.0)
            if allocated + EPSILON >= spec.rpf.saturation_cpu:
                continue
            own_nodes = set(state.nodes_of(app_id))
            if any(
                state.cpu_available(n) > EPSILON
                for n in self._cluster.node_names
                if n not in own_nodes
            ):
                return True
        return False

    def _sweep(
        self,
        best_state: PlacementState,
        best_score: PlacementScore,
        best_utilities: Dict[str, float],
        best_allocations: Dict[str, float],
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        evaluate,
    ):
        """One outer-loop pass over all nodes.  Returns
        ``(improved, state, score, utilities, allocations)``."""
        improved = False

        # Outer loop: visit nodes hosting the highest-utility instances
        # first — they are the most promising donors of capacity.
        def node_key(node: str) -> float:
            apps = best_state.apps_on(node)
            if not apps:
                return float("-inf")
            return max(best_utilities.get(a, float("-inf")) for a in apps)

        for node in sorted(self._cluster.node_names, key=node_key, reverse=True):
            # All of this node's candidate configurations are built from
            # the same base (competing alternatives for the node); an
            # adopted candidate becomes the base for *subsequent* nodes.
            node_base = best_state
            # Intermediate loop: cumulative removals, highest utility first.
            removable: List[str] = []
            for app_id in sorted(
                node_base.apps_on(node),
                key=lambda a: best_utilities.get(a, float("-inf")),
                reverse=True,
            ):
                removable.extend([app_id] * node_base.instances(app_id)[node])
            if self._config.max_removals_per_node is not None:
                removable = removable[: self._config.max_removals_per_node]

            for removals in range(len(removable) + 1):
                trial = node_base.copy()
                for app_id in removable[:removals]:
                    trial.remove(app_id, node)
                filled = self._fill_node(
                    trial, specs, candidates, best_utilities, node,
                    forbidden=set(removable[:removals]),
                )
                if removals == 0 and not filled:
                    continue  # identical to the incumbent placement
                # Preemptive configs (those that suspend/relocate running
                # instances) must clear the preemption penalty; pure
                # additions only the noise threshold.
                tolerance = (
                    max(
                        self._config.preemption_penalty,
                        self._config.improvement_epsilon,
                    )
                    if removals > 0
                    else None
                )
                score, utilities, allocations = evaluate(trial, tolerance=tolerance)
                if score.utilities > best_score.utilities:
                    best_state, best_score = trial, score
                    best_utilities, best_allocations = utilities, allocations
                    improved = True
        return improved, best_state, best_score, best_utilities, best_allocations

    def _fill_node(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
        node: str,
        forbidden: set,
    ) -> bool:
        """Inner loop: place new instances on ``node``, LRPF order."""
        placed_any = False
        eligible = [
            c
            for c in candidates
            if c in specs
            and c not in forbidden
            and (specs[c].demand.divisible or not state.is_placed(c))
            and state.instances(c).get(node, 0) == 0
        ]
        eligible.sort(key=lambda a: utilities.get(a, specs[a].rpf.max_utility))
        for app_id in eligible:
            spec = specs[app_id]
            if self._can_host(state, spec, node) and self._min_cpu_fits(
                state, specs, node, spec.demand.min_cpu_mhz
            ):
                state.place(app_id, node, spec.demand.memory_mb)
                placed_any = True
        return placed_any
