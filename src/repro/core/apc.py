"""The Application Placement Controller (APC).

§3.2: every control cycle the APC "examines the placement of applications
on nodes and their resource allocations, evaluates the relative
performance of this allocation and makes changes to the allocation by
starting, stopping, suspending, resuming, relocating or changing CPU
share configuration of some applications".

The optimization objective is the maxmin extension over per-application
relative performance (see :mod:`repro.core.objective`), subject to node
memory/CPU capacities and placement constraints, with a secondary goal of
minimizing placement changes.

The placement problem is NP-hard; the search is the three-nested-loop
heuristic of [18] (Carrera et al., NOMS 2008):

* the **outer loop** iterates over nodes;
* the **intermediate loop** iterates over the application instances
  placed on the node and removes them one by one (cumulatively),
  generating a set of candidate configurations linear in the number of
  instances on the node — instances of the *highest*-utility applications
  are removed first (they can best afford to lose resources);
* the **inner loop** iterates over applications, attempting to place new
  instances on the node as permitted by the constraints — applications
  are visited lowest-relative-performance first (the paper's LRPF
  ordering), so the neediest work is considered first.

Each candidate configuration is scored by running the load-distribution
optimizer (:mod:`repro.core.loadbalance`) and the workload models'
predictors; it is adopted only if the global utility vector strictly
improves (ties never justify churn — which is exactly why, in the
illustrative example's Scenario 1, the controller leaves J1 running
alone, and why Experiment One's identical-job workload sees zero
placement changes).

Before the full search the controller runs a cheap **greedy admission
pass** that places queued/unplaced applications into free capacity in
LRPF order.  When no removal-based improvement is possible — detected by
comparing unplaced candidates' best-achievable relative performance
against placed applications' current predictions — the search is skipped
entirely.  This is the "internal shortcut" the paper observes: "when all
submitted jobs can be placed concurrently, the algorithm is able to take
internal shortcuts, resulting in a significant reduction in execution
time" (§5.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._compat import keyword_only
from repro.cluster import Cluster
from repro.core.admission import (
    AdmissionLike,
    AdmissionStrategy,
    resolve_admission,
)
from repro.core.constraints import ConstraintSet
from repro.core.loadbalance import AllocatableApp, SpecArrays, distribute_load
from repro.core.objective import (
    Objective,
    ObjectiveLike,
    PlacementScore,
    UtilityVector,
    resolve_objective,
)
from repro.core.placement import PlacementState
from repro.core.workload import WorkloadModel
from repro.errors import ConfigurationError, PlacementError
from repro.obs.audit import DecisionAudit
from repro.obs.registry import MetricRegistry
from repro.obs.spans import NULL_SPAN, SpanProfiler
from repro.units import EPSILON
from repro.virt.actions import diff_placements

#: Every profiler span phase the controller can emit, in nesting order.
#: Pinned by test: dashboards and ``repro bench --profile`` key off these
#: names, so renames are breaking changes.
SPAN_PHASES: Tuple[str, ...] = (
    "apc.place",
    "apc.model_specs",
    "apc.spec_tables",
    "apc.admission",
    "apc.search",
    "apc.frontier",
    "apc.evaluate",
    "apc.loadbalance",
    "apc.predict",
    "apc.objective",
)


@keyword_only
@dataclass
class APCConfig:
    """Tunables of the placement controller.  Construct with keyword
    arguments (positional construction is deprecated).

    Attributes
    ----------
    cycle_length:
        Control cycle period ``T`` in seconds (§3.1: "of the order of
        minutes"; Experiment One uses 600 s).
    max_removals_per_node:
        Cap on the intermediate loop's cumulative removals per node
        (``None`` = all instances on the node may be considered).
    search_sweeps:
        Number of outer-loop sweeps over all nodes per cycle.
    improvement_epsilon:
        Minimum per-element utility-vector improvement that justifies a
        change; below this, candidates are treated as ties (and ties
        never justify churn).  The default, 0.02, matches the paper's
        reporting granularity for the illustrative example — Scenario 1's
        alternatives (exactly: 0.6875 vs 0.6955) are reported as the tie
        "0.7 vs 0.7" and resolved in favor of no change.
    preemption_penalty:
        Extra utility-vector improvement a candidate must show when it
        *suspends or relocates* running instances.  The hypothetical
        predictor has one-cycle lookahead: swapping a queued job for a
        running one of the same class always shows a transient gain of
        ``T / relative_goal`` (the queued job's achievable performance
        stops eroding for one cycle) even though the true completion-time
        vector cannot improve — the paper proves this for identical jobs
        (§5.1) and indeed observes zero changes.  Requiring preemptive
        configs to beat the incumbent by this margin suppresses those
        illusory swaps while preserving genuine urgency-driven
        preemption (a tight-goal job's erosion rate is many times
        larger).  This realizes the paper's "heuristics that aim to
        minimize the number of changes to the current placement" (§3.2).
    enable_search:
        When False only the greedy admission pass runs (useful for
        ablations; the full paper algorithm keeps it True).
    incremental:
        Enable the fast-path machinery: the per-cycle candidate
        evaluation memo, the O(1) per-node min-CPU admission index, the
        no-op-node skip and the utility upper-bound short-circuit.  Every
        one of these preserves the naive solver's decisions byte for
        byte (pinned by test); the flag exists so benchmarks and
        regression hunts can fall back to the reference three-loop
        implementation.
    vectorize:
        Use the dense array kernels: merged per-application
        :class:`~repro.core.loadbalance.SpecArrays` feeding the
        vectorized load distributor, the array-scan admission pass and
        the frontier index behind the no-op-node skip.  Decisions are
        byte-identical with the scalar paths (pinned by test); the flag
        exists so benchmarks can measure scalar vs. vectorized and
        regression hunts can bisect.  Only active together with
        ``incremental`` on clusters of at least ``fast_path_min_nodes``.
    fast_path_min_nodes:
        Minimum cluster size for the fast-path machinery (memo, indexes,
        vectorized kernels).  Below it the bookkeeping costs more than
        the scans it replaces — on a 10-node cluster the memo/index
        setup made ``incremental`` ~15% *slower* than the naive loops —
        so small clusters run the plain reference path.  Decisions are
        unaffected either way.  Set to 0 to force the fast path at any
        size.
    """

    cycle_length: float = 600.0
    max_removals_per_node: Optional[int] = None
    search_sweeps: int = 1
    improvement_epsilon: float = 0.02
    preemption_penalty: float = 0.05
    enable_search: bool = True
    incremental: bool = True
    vectorize: bool = True
    fast_path_min_nodes: int = 16

    def __post_init__(self) -> None:
        if self.cycle_length <= 0:
            raise ConfigurationError(f"cycle length must be positive, got {self.cycle_length}")
        if self.search_sweeps < 0:
            raise ConfigurationError(f"search sweeps must be >= 0, got {self.search_sweeps}")
        if self.max_removals_per_node is not None and self.max_removals_per_node < 0:
            raise ConfigurationError("max removals per node must be >= 0 or None")
        if self.fast_path_min_nodes < 0:
            raise ConfigurationError(
                f"fast path min nodes must be >= 0, got {self.fast_path_min_nodes}"
            )

    def to_dict(self) -> Dict[str, object]:
        """A plain JSON-serializable representation (round-trips through
        :meth:`from_dict`)."""
        return {
            "cycle_length": self.cycle_length,
            "max_removals_per_node": self.max_removals_per_node,
            "search_sweeps": self.search_sweeps,
            "improvement_epsilon": self.improvement_epsilon,
            "preemption_penalty": self.preemption_penalty,
            "enable_search": self.enable_search,
            "incremental": self.incremental,
            "vectorize": self.vectorize,
            "fast_path_min_nodes": self.fast_path_min_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "APCConfig":
        """Build from a plain dict (inverse of :meth:`to_dict`); unknown
        keys are rejected to surface config typos."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown APCConfig keys: {sorted(unknown)}"
            )
        return cls(**dict(data))


@dataclass
class APCResult:
    """Outcome of one control cycle's placement computation."""

    #: The chosen placement with its load matrix filled in.
    state: PlacementState
    #: Total CPU granted per placed application.
    allocations: Dict[str, float] = field(default_factory=dict)
    #: Predicted relative performance for every application (incl. unplaced).
    utilities: Dict[str, float] = field(default_factory=dict)
    #: Score of the chosen placement (vs. the cycle's starting placement).
    score: Optional[PlacementScore] = None
    #: Number of candidate placements fully evaluated.
    evaluations: int = 0
    #: Whether the chosen placement differs from the starting one.
    changed: bool = False
    #: Candidate evaluations answered from the per-cycle memo (always 0
    #: with ``incremental=False`` or below ``fast_path_min_nodes``).
    cache_hits: int = 0

    @property
    def utility_vector(self) -> UtilityVector:
        return UtilityVector(self.utilities.values())


class _FrontierIndex:
    """Per-base-state candidate frontier for the no-op-node check.

    :meth:`ApplicationPlacementController._fill_possible` asks, per
    node, whether *any* candidate could be placed on the unmodified
    base state.  The candidate-intrinsic parts of that answer — spec
    existence, non-divisible-and-already-placed, the max-instances cap —
    depend only on the base state, so they are filtered once here; the
    per-node remainder (memory fit, min-CPU reservation, no instance
    already on the node) becomes two array comparisons and a mask.

    Only built without placement constraints (whose per-(app, node)
    policy check stays scalar).  Answers are byte-identical to the
    scalar scan: same float comparisons per surviving candidate, and
    ``any`` over the same boolean set.
    """

    __slots__ = ("ids", "mem", "min_cpu", "on_node")

    @classmethod
    def build(
        cls,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
    ) -> "_FrontierIndex":
        index = cls.__new__(cls)
        ids: List[str] = []
        mem: List[float] = []
        min_cpu: List[float] = []
        seen: set = set()
        for c in candidates:
            if c in seen:
                continue
            seen.add(c)
            spec = specs.get(c)
            if spec is None:
                continue
            demand = spec.demand
            if not demand.divisible and state.is_placed(c):
                continue
            if (
                demand.max_instances is not None
                and state.instance_count(c) >= demand.max_instances
            ):
                continue
            ids.append(c)
            mem.append(demand.memory_mb)
            min_cpu.append(demand.min_cpu_mhz)
        index.ids = ids
        index.mem = np.array(mem)
        index.min_cpu = np.array(min_cpu)
        on_node: Dict[str, List[int]] = {}
        for row, c in enumerate(ids):
            for node, count in state.instance_items(c):
                if count != 0:
                    on_node.setdefault(node, []).append(row)
        index.on_node = {n: np.array(rows) for n, rows in on_node.items()}
        return index

    def fill_possible(
        self,
        mem_avail: float,
        committed: float,
        capacity: float,
        node: str,
    ) -> bool:
        """Could the fill pass place anything on ``node``?"""
        ok = (mem_avail + EPSILON >= self.mem) & (
            committed + self.min_cpu <= capacity + EPSILON
        )
        hosted = self.on_node.get(node)
        if hosted is not None:
            ok[hosted] = False
        return bool(ok.any())


class ApplicationPlacementController:
    """Searches for the best placement each control cycle."""

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[APCConfig] = None,
        constraints: Optional[ConstraintSet] = None,
        profiler: Optional[SpanProfiler] = None,
        registry: Optional[MetricRegistry] = None,
        audit: Optional[DecisionAudit] = None,
        objective: ObjectiveLike = None,
        admission: AdmissionLike = None,
        tracer=None,
    ) -> None:
        self._cluster = cluster
        self._config = config or APCConfig()
        self._constraints = constraints or ConstraintSet()
        self._profiler = profiler
        self._audit = audit
        #: Optional causal job tracer (``repro.obs.tracing.JobTracer``);
        #: receives the same admission verdicts as the audit.
        self._tracer = tracer
        #: Candidate-ranking strategy; ``None`` resolves to the paper's
        #: lexicographic maxmin, byte-identical to the historical
        #: hardwired scoring.
        self._objective = resolve_objective(objective)
        #: Greedy-pass ordering; ``None`` resolves to the paper's LRPF.
        self._admission = resolve_admission(admission)
        #: Node name -> position, replacing O(N) ``node_names.index``
        #: lookups in the admission pass's host tie-break.
        self._node_pos: Dict[str, int] = {
            n: i for i, n in enumerate(cluster.node_names)
        }
        #: Whether the fast-path machinery (memo, indexes, vector
        #: kernels) is engaged: requires ``incremental`` and a cluster
        #: big enough for the bookkeeping to pay for itself.  Both the
        #: fast and the reference paths make identical decisions.
        self._fast = (
            self._config.incremental
            and len(cluster) >= self._config.fast_path_min_nodes
        )
        self._c_cache = None
        self._c_shortcut = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry: MetricRegistry) -> None:
        """Publish fast-path telemetry into a
        :class:`~repro.obs.registry.MetricRegistry`: evaluation-memo
        lookups (``repro_apc_cache_total``) and search short-circuits
        (``repro_apc_shortcircuit_total``)."""
        self._c_cache = registry.counter(
            "repro_apc_cache_total",
            "APC candidate-evaluation memo lookups by outcome",
            ("outcome",),
        )
        self._c_shortcut = registry.counter(
            "repro_apc_shortcircuit_total",
            "APC search work skipped by fast-path checks",
            ("kind",),
        )

    @property
    def config(self) -> APCConfig:
        return self._config

    @property
    def constraints(self) -> ConstraintSet:
        return self._constraints

    @property
    def profiler(self) -> Optional[SpanProfiler]:
        return self._profiler

    @property
    def audit(self) -> Optional[DecisionAudit]:
        return self._audit

    @property
    def objective(self) -> Objective:
        return self._objective

    @property
    def admission(self) -> AdmissionStrategy:
        return self._admission

    def attach_audit(self, audit: Optional[DecisionAudit]) -> None:
        """Attach (or detach, with ``None``) the decision flight
        recorder.  Placement decisions are unaffected either way."""
        self._audit = audit

    @property
    def tracer(self):
        return self._tracer

    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) the causal job tracer.
        Placement decisions are unaffected either way."""
        self._tracer = tracer

    def _span(self, name: str, **attrs: object):
        """A profiler span, or the shared no-op when un-instrumented."""
        if self._profiler is None:
            return NULL_SPAN
        return self._profiler.span(name, **attrs)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def place(
        self,
        models: Sequence[WorkloadModel],
        current: PlacementState,
        now: float,
    ) -> APCResult:
        """Compute the placement for the control cycle starting at ``now``.

        ``current`` is the placement in effect; it is not mutated.  The
        returned state carries the new placement and load matrix.

        With a :class:`~repro.obs.spans.SpanProfiler` attached, the whole
        computation is one ``apc.place`` root span whose children break
        the cycle's decision time into phases: model spec merging
        (``apc.model_specs``), spec-array table assembly
        (``apc.spec_tables``, vectorized path only), candidate
        evaluation (``apc.evaluate``, itself split into the
        load-balancing solve ``apc.loadbalance``, the workload models'
        hypothetical/RPF prediction ``apc.predict``, and objective
        scoring ``apc.objective``), the greedy admission pass
        (``apc.admission``), and the nested-loop search (``apc.search``,
        with frontier-index builds under ``apc.frontier``).  The full
        phase list is pinned as :data:`SPAN_PHASES`.  Un-instrumented,
        the spans are no-ops and the computation is unchanged.
        """
        with self._span("apc.place"):
            return self._place_profiled(models, current, now)

    def _place_profiled(
        self,
        models: Sequence[WorkloadModel],
        current: PlacementState,
        now: float,
    ) -> APCResult:
        audit = self._audit
        if audit is not None:
            audit.begin_cycle(now)
        if self._tracer is not None:
            self._tracer.begin_cycle(now)
        with self._span("apc.model_specs"):
            specs = self._merge_specs(models, now)
            candidates = self._merge_candidates(models, now)
        tables: Optional[SpecArrays] = None
        if self._fast and self._config.vectorize and specs:
            with self._span("apc.spec_tables"):
                tables = self._merge_spec_arrays(models, specs, now)

        state = current.copy()
        self._prune_vanished(state, specs)
        self._prune_unavailable(state)
        self._refresh_demands(state, specs)
        baseline = state.as_matrix()

        evaluations = 0
        cache_hits = 0
        use_memo = self._fast
        #: Whether the most recent evaluate() call was memo-served; read
        #: by the audit so memo hits are recorded identically to misses
        #: (just flagged).  A plain dict write, so decisions are
        #: unaffected when no audit is attached.
        eval_info = {"cached": False}
        #: matrix_key -> (utilities, allocations, churn, load entries in
        #: write order).  Valid for this cycle only: specs and `now` are
        #: fixed, so evaluation is a pure function of the placement.
        eval_memo: Dict[Tuple, Tuple] = {}

        def evaluate(
            trial: PlacementState, tolerance: Optional[float] = None
        ) -> Tuple[PlacementScore, Dict[str, float], Dict[str, float]]:
            nonlocal evaluations, cache_hits
            tol = (
                self._config.improvement_epsilon
                if tolerance is None
                else tolerance
            )
            key = trial.matrix_key() if use_memo else None
            if key is not None:
                hit = eval_memo.get(key)
                if hit is not None:
                    cache_hits += 1
                    eval_info["cached"] = True
                    if self._c_cache is not None:
                        self._c_cache.inc(outcome="hit")
                    utilities, allocations, churn, load_entries = hit
                    # Replay the load matrix in its original write order
                    # so the trial state is indistinguishable from a
                    # freshly evaluated one.
                    trial.clear_load()
                    for app_id, node, cpu in load_entries:
                        trial.set_cpu(app_id, node, cpu)
                    score = self._objective.score(utilities, churn, tol)
                    return score, dict(utilities), dict(allocations)
                if self._c_cache is not None:
                    self._c_cache.inc(outcome="miss")
            eval_info["cached"] = False
            evaluations += 1
            with self._span("apc.evaluate"):
                with self._span("apc.loadbalance"):
                    result = distribute_load(trial, specs, tables=tables)
                utilities: Dict[str, float] = {}
                with self._span("apc.predict"):
                    for model in models:
                        utilities.update(
                            model.evaluate(
                                result.allocations, now, self._config.cycle_length
                            )
                        )
                with self._span("apc.objective"):
                    removals, additions = diff_placements(
                        baseline, trial.as_matrix()
                    )
                    churn = sum(c for _, _, c in removals) + sum(
                        c for _, _, c in additions
                    )
                    score = self._objective.score(utilities, churn, tol)
            if key is not None:
                load_entries = tuple(
                    (a, n, c)
                    for a, nodes in trial.load_matrix().items()
                    for n, c in nodes.items()
                )
                eval_memo[key] = (
                    dict(utilities), dict(result.allocations), churn, load_entries
                )
            return score, utilities, result.allocations

        best_state = state
        best_score, best_utilities, best_allocations = evaluate(best_state)

        if audit is not None:
            audit.incumbent(best_utilities)
            seen_rpf = set()
            for c in candidates:
                spec = specs.get(c)
                if spec is None or state.is_placed(c) or c in seen_rpf:
                    continue
                seen_rpf.add(c)
                audit.rpf_inputs(
                    c,
                    max_utility=spec.rpf.max_utility,
                    saturation_cpu=spec.rpf.saturation_cpu,
                    min_cpu=spec.demand.min_cpu_mhz,
                    memory_mb=spec.demand.memory_mb,
                    divisible=spec.demand.divisible,
                )

        # ---- greedy admission pass --------------------------------------
        # Adoption always requires a *strict* utility-vector improvement:
        # a tie never justifies touching the placement (the illustrative
        # example's Scenario 1 — the equal-utility alternative that
        # starts J2 is rejected because it requires a change).
        with self._span("apc.admission"):
            trial = best_state.copy()
            placed_any = self._greedy_admit(trial, specs, candidates, best_utilities)
            if placed_any:
                score, utilities, allocations = evaluate(trial)
                adopted = self._objective.better(score, best_score)
                if audit is not None:
                    audit.candidate(
                        stage="admission",
                        accepted=adopted,
                        reason="improved" if adopted else "no_improvement",
                        utilities=utilities,
                        comparison=self._objective.explain(score, best_score),
                        churn=score.num_changes,
                        cached=eval_info["cached"],
                        tolerance=score.utilities.tolerance,
                    )
                if adopted:
                    best_state, best_score = trial, score
                    best_utilities, best_allocations = utilities, allocations

        # ---- full nested-loop search ------------------------------------
        run_search = self._config.enable_search and self._search_is_worthwhile(
            best_state, specs, candidates, best_utilities, best_allocations
        )
        if audit is not None and not run_search:
            audit.shortcircuit(
                "search_skipped"
                if self._config.enable_search
                else "search_disabled"
            )
        if run_search:
            bound_reached = (
                self._make_bound_checker(specs)
                if self._fast and self._objective.supports_upper_bound
                else None
            )
            with self._span("apc.search"):
                for _ in range(self._config.search_sweeps):
                    if bound_reached is not None and bound_reached(best_score):
                        # No candidate vector can clear the incumbent by
                        # more than the noise threshold anywhere.
                        if self._c_shortcut is not None:
                            self._c_shortcut.inc(kind="upper_bound")
                        if audit is not None:
                            audit.shortcircuit("upper_bound")
                        break
                    (
                        improved,
                        best_state,
                        best_score,
                        best_utilities,
                        best_allocations,
                    ) = self._sweep(
                        best_state,
                        best_score,
                        best_utilities,
                        best_allocations,
                        specs,
                        candidates,
                        evaluate,
                        bound_reached,
                        eval_info,
                    )
                    if not improved:
                        break

        changed = best_state.as_matrix() != baseline
        if audit is not None:
            audit.end_cycle(
                utilities_after=best_utilities,
                changed=changed,
                evaluations=evaluations,
                cache_hits=cache_hits,
            )
        return APCResult(
            state=best_state,
            allocations=best_allocations,
            utilities=best_utilities,
            score=best_score,
            evaluations=evaluations,
            changed=changed,
            cache_hits=cache_hits,
        )

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    def _merge_specs(
        self, models: Sequence[WorkloadModel], now: float
    ) -> Dict[str, AllocatableApp]:
        specs: Dict[str, AllocatableApp] = {}
        for model in models:
            for app_id, spec in model.app_specs(now).items():
                if app_id in specs:
                    raise PlacementError(
                        f"application id {app_id!r} provided by multiple models"
                    )
                specs[app_id] = spec
        return specs

    def _merge_candidates(
        self, models: Sequence[WorkloadModel], now: float
    ) -> List[str]:
        out: List[str] = []
        for model in models:
            out.extend(model.placement_candidates(now))
        return out

    def _merge_spec_arrays(
        self,
        models: Sequence[WorkloadModel],
        specs: Mapping[str, AllocatableApp],
        now: float,
    ) -> Optional[SpecArrays]:
        """Assemble the cycle's column-oriented spec table.

        Models that can export their specs as arrays directly (the
        vectorized batch model's ``app_spec_arrays``) do so without
        touching per-app spec objects; the rest are converted through
        the scalar :meth:`SpecArrays.from_specs` fallback.  Returns
        ``None`` when there is nothing to tabulate.
        """
        parts: List[SpecArrays] = []
        covered: set = set()
        for model in models:
            exporter = getattr(model, "app_spec_arrays", None)
            if exporter is None:
                continue
            part = exporter(now)
            if part is None:
                continue
            parts.append(part)
            covered.update(part.ids)
        leftover = {a: s for a, s in specs.items() if a not in covered}
        if leftover:
            parts.append(SpecArrays.from_specs(leftover))
        if not parts:
            return None
        return SpecArrays.merge(parts)

    @staticmethod
    def _prune_vanished(state: PlacementState, specs: Mapping[str, AllocatableApp]) -> None:
        """Remove instances of applications no longer under management
        (completed jobs, deregistered apps)."""
        for app_id in list(state.app_ids):
            if app_id not in specs:
                for node, count in state.instances(app_id).items():
                    state.remove(app_id, node, count)

    @staticmethod
    def _prune_unavailable(state: PlacementState) -> None:
        """Drop instances stranded on unavailable nodes.

        The simulator evicts placements when a node fails, but the
        controller defends in depth: planning must start from capacity
        that actually exists, however the state it was handed came to be
        (a failed actuator action's fallback, an externally maintained
        placement, ...).  Dropped applications become candidates again
        this same cycle.
        """
        for node in state.cluster:
            if node.available:
                continue
            for app_id in list(state.apps_on(node.name)):
                count = state.instances_on(app_id, node.name)
                if count:
                    state.remove(app_id, node.name, count)

    @staticmethod
    def _refresh_demands(
        state: PlacementState, specs: Mapping[str, AllocatableApp]
    ) -> None:
        """Re-apply current memory demands to carried-over instances.

        A multi-stage job's memory requirement (``γ_k``) changes across
        stage boundaries (§4.1).  Instances are re-placed with the
        current demand; an instance whose grown footprint no longer fits
        its node is removed (the admission/search passes will try to
        place the application elsewhere this same cycle).
        """
        from repro.errors import CapacityError

        for app_id in list(state.app_ids):
            spec = specs.get(app_id)
            if spec is None:
                continue
            recorded = state.memory_demand_of(app_id)
            if recorded is None or abs(recorded - spec.demand.memory_mb) <= EPSILON:
                continue
            placements = state.instances(app_id)
            for node, count in placements.items():
                state.remove(app_id, node, count)
            state.forget_memory_demand(app_id)
            for node, count in placements.items():
                try:
                    state.place(app_id, node, spec.demand.memory_mb, count)
                except CapacityError:
                    pass  # evicted by its own growth; may be re-placed

    def _can_host(
        self,
        state: PlacementState,
        spec: AllocatableApp,
        node: str,
    ) -> bool:
        """Memory + min-CPU + policy check for one more instance."""
        demand = spec.demand
        if state.memory_available(node) + EPSILON < demand.memory_mb:
            return False
        if demand.max_instances is not None:
            if state.instance_count(demand.app_id) >= demand.max_instances:
                return False
        # Reserve minimum speeds: the sum of min speeds of instances on
        # the node (including the newcomer) must fit in CPU capacity.
        return self._constraints.allows(state, demand.app_id, node)

    def _min_cpu_fits(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        node: str,
        extra_min: float,
    ) -> bool:
        committed = extra_min
        for app_id in state.apps_on(node):
            spec = specs.get(app_id)
            if spec is None:
                continue
            committed += spec.demand.min_cpu_mhz * state.instances_on(app_id, node)
        return committed <= self._cluster.node(node).cpu_capacity + EPSILON

    def _committed_min_cpu(
        self, state: PlacementState, specs: Mapping[str, AllocatableApp]
    ) -> Dict[str, float]:
        """Per-node sum of placed instances' minimum speeds.

        The incremental admission index: computed once per pass, updated
        in O(1) per placement, making the min-CPU reservation check
        constant-time instead of a scan over every application on the
        node for every (candidate, node) pair.
        """
        committed = {n: 0.0 for n in self._cluster.node_names}
        for app_id in state.app_ids:
            spec = specs.get(app_id)
            if spec is None:
                continue
            min_cpu = spec.demand.min_cpu_mhz
            if min_cpu <= 0.0:
                continue
            for node, count in state.instance_items(app_id):
                committed[node] += min_cpu * count
        return committed

    def _make_bound_checker(
        self, specs: Mapping[str, AllocatableApp]
    ) -> Callable[[PlacementScore], bool]:
        """A predicate: can no candidate placement beat this incumbent?

        Any candidate's per-application utility is bounded by the
        application's RPF maximum, and element-wise domination survives
        sorting, so the sorted vector of RPF maxima dominates every
        candidate vector element-wise.  Adoption requires the candidate
        to exceed the incumbent by more than the comparison tolerance at
        some position, and every tolerance in play is at least
        ``improvement_epsilon`` — so once the bound is within epsilon of
        the incumbent everywhere, no further sweep can adopt anything.
        """
        upper = sorted(spec.rpf.max_utility for spec in specs.values())
        epsilon = self._config.improvement_epsilon

        def reached(score: PlacementScore) -> bool:
            incumbent = score.utilities.values
            if len(incumbent) != len(upper):
                return False
            return all(u <= b + epsilon for u, b in zip(upper, incumbent))

        return reached

    def _greedy_admit(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
    ) -> bool:
        """Place unplaced candidates into free capacity, LRPF first.

        Singleton applications (jobs) get one instance on the node with
        the most free CPU among those with room; divisible applications
        (web clusters) get an instance on *every* node that can host one —
        growing the cluster costs nothing at this stage and lets the load
        distributor use all available capacity.
        """
        unplaced = [c for c in candidates if not state.is_placed(c) and c in specs]
        unplaced = self._admission.order(unplaced, specs, utilities)
        if not unplaced:
            return False
        if self._fast:
            if self._config.vectorize and not len(self._constraints):
                return self._greedy_admit_vec(state, specs, unplaced, utilities)
            return self._greedy_admit_fast(state, specs, unplaced, utilities)
        observe = self._audit is not None or self._tracer is not None
        placed_any = False
        for rank, app_id in enumerate(unplaced):
            spec = specs[app_id]
            min_cpu = spec.demand.min_cpu_mhz
            placed_nodes: List[str] = []
            if spec.demand.divisible:
                for node in self._cluster.node_names:
                    if self._can_host(state, spec, node) and self._min_cpu_fits(
                        state, specs, node, min_cpu
                    ):
                        state.place(app_id, node, spec.demand.memory_mb)
                        placed_any = True
                        placed_nodes.append(node)
            else:
                hosts = [
                    n
                    for n in self._cluster.node_names
                    if self._can_host(state, spec, n)
                    and self._min_cpu_fits(state, specs, n, min_cpu)
                ]
                if hosts:
                    # Most free CPU first: spreads jobs and leaves room
                    # for each to reach its maximum speed.
                    target = max(
                        hosts,
                        key=lambda n: (
                            state.cpu_available(n),
                            -self._cluster.node_names.index(n),
                        ),
                    )
                    state.place(app_id, target, spec.demand.memory_mb)
                    placed_any = True
                    placed_nodes.append(target)
            if observe:
                self._note_admission(
                    state, specs, app_id, rank, utilities, placed_nodes
                )
        return placed_any

    def _note_admission(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        app_id: str,
        rank: int,
        utilities: Mapping[str, float],
        placed_nodes: Sequence[str],
    ) -> None:
        """Emit one greedy-admission verdict to the attached observers
        (audit and/or tracer); only called when at least one is on."""
        accepted = bool(placed_nodes)
        reason = (
            "placed"
            if placed_nodes
            else self._admission_reject_reason(state, specs, app_id)
        )
        utility = utilities.get(app_id, specs[app_id].rpf.max_utility)
        if self._audit is not None:
            self._audit.admission(
                app_id,
                accepted=accepted,
                reason=reason,
                lrpf_rank=rank,
                utility=utility,
                nodes=placed_nodes,
            )
        if self._tracer is not None:
            self._tracer.admission(
                app_id,
                accepted=accepted,
                reason=reason,
                lrpf_rank=rank,
                utility=utility,
                nodes=placed_nodes,
            )

    def _admission_reject_reason(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        app_id: str,
    ) -> str:
        """Why the admission pass placed nothing for ``app_id``.

        Checks are ordered by specificity and computed from the state
        alone, so both search paths report identical reasons.  Only
        called with an audit or tracer attached — never on the decision
        path.
        """
        demand = specs[app_id].demand
        if (
            demand.max_instances is not None
            and state.instance_count(app_id) >= demand.max_instances
        ):
            return "max_instances"
        mem_ok = [
            n
            for n in self._cluster.node_names
            if state.memory_available(n) + EPSILON >= demand.memory_mb
        ]
        if not mem_ok:
            return "memory"
        cpu_ok = [
            n
            for n in mem_ok
            if self._min_cpu_fits(state, specs, n, demand.min_cpu_mhz)
        ]
        if not cpu_ok:
            return "min_cpu"
        if not any(
            self._constraints.allows(state, app_id, n) for n in cpu_ok
        ):
            return "constraint"
        return "no_host"

    def _greedy_admit_fast(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        unplaced: Sequence[str],
        utilities: Mapping[str, float],
    ) -> bool:
        """Indexed admission pass: same decisions as the naive loop, but
        per-node memory/min-CPU/free-CPU figures are computed once and
        updated in O(1) per placement instead of re-derived from the
        state for every (candidate, node) pair."""
        node_names = self._cluster.node_names
        committed = self._committed_min_cpu(state, specs)
        capacity = {n: self._cluster.node(n).cpu_capacity for n in node_names}
        mem_avail = {n: state.memory_available(n) for n in node_names}
        # The admission pass never touches the load matrix, so free CPU
        # (the host tie-break key) is constant throughout.
        cpu_avail = {n: state.cpu_available(n) for n in node_names}
        node_pos = self._node_pos
        constraints = self._constraints if len(self._constraints) else None
        observe = self._audit is not None or self._tracer is not None
        placed_any = False
        for rank, app_id in enumerate(unplaced):
            demand = specs[app_id].demand
            memory_mb = demand.memory_mb
            min_cpu = demand.min_cpu_mhz
            max_inst = demand.max_instances
            count = state.instance_count(app_id)
            placed_nodes: List[str] = []
            if demand.divisible:
                for node in node_names:
                    if max_inst is not None and count >= max_inst:
                        break
                    if mem_avail[node] + EPSILON < memory_mb:
                        continue
                    if committed[node] + min_cpu > capacity[node] + EPSILON:
                        continue
                    if constraints is not None and not constraints.allows(
                        state, app_id, node
                    ):
                        continue
                    state.place(app_id, node, memory_mb)
                    committed[node] += min_cpu
                    mem_avail[node] -= memory_mb
                    count += 1
                    placed_any = True
                    placed_nodes.append(node)
            elif max_inst is None or count < max_inst:
                hosts = [
                    n
                    for n in node_names
                    if mem_avail[n] + EPSILON >= memory_mb
                    and committed[n] + min_cpu <= capacity[n] + EPSILON
                    and (
                        constraints is None
                        or constraints.allows(state, app_id, n)
                    )
                ]
                if hosts:
                    target = max(
                        hosts, key=lambda n: (cpu_avail[n], -node_pos[n])
                    )
                    state.place(app_id, target, memory_mb)
                    committed[target] += min_cpu
                    mem_avail[target] -= memory_mb
                    placed_any = True
                    placed_nodes.append(target)
            if observe:
                self._note_admission(
                    state, specs, app_id, rank, utilities, placed_nodes
                )
        return placed_any

    def _greedy_admit_vec(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        unplaced: Sequence[str],
        utilities: Mapping[str, float],
    ) -> bool:
        """Array-scan admission pass: the decisions of
        :meth:`_greedy_admit_fast`, with the per-candidate host scan as
        one numpy comparison over all node columns.

        Only used without placement constraints (the policy check is
        per-(app, node) and stays scalar); byte-identity with the scalar
        pass is pinned by test.  The host tie-break — most free CPU,
        then lowest node position — maps onto ``argmax`` because numpy
        returns the *first* maximum.
        """
        node_index = state.node_index
        names = list(node_index)
        cpu_caps, mem_caps = state.capacity_arrays()
        mem_avail = mem_caps - state.memory_used_array()
        # The admission pass never touches the load matrix, so free CPU
        # (the host tie-break key) is constant throughout.
        cpu_avail = cpu_caps - state.cpu_used_array()
        committed_by_name = self._committed_min_cpu(state, specs)
        committed = np.array([committed_by_name[n] for n in names])
        observe = self._audit is not None or self._tracer is not None
        placed_any = False
        for rank, app_id in enumerate(unplaced):
            demand = specs[app_id].demand
            memory_mb = demand.memory_mb
            min_cpu = demand.min_cpu_mhz
            max_inst = demand.max_instances
            count = state.instance_count(app_id)
            placed_nodes: List[str] = []
            mask = (mem_avail + EPSILON >= memory_mb) & (
                committed + min_cpu <= cpu_caps + EPSILON
            )
            if demand.divisible:
                cols = np.flatnonzero(mask)
                if max_inst is not None:
                    cols = cols[: max(0, max_inst - count)]
                if cols.size:
                    for col in cols.tolist():
                        state.place(app_id, names[col], memory_mb)
                        placed_nodes.append(names[col])
                    committed[cols] += min_cpu
                    mem_avail[cols] -= memory_mb
                    placed_any = True
            elif (max_inst is None or count < max_inst) and bool(mask.any()):
                target = int(np.argmax(np.where(mask, cpu_avail, -np.inf)))
                state.place(app_id, names[target], memory_mb)
                committed[target] += min_cpu
                mem_avail[target] -= memory_mb
                placed_any = True
                placed_nodes.append(names[target])
            if observe:
                self._note_admission(
                    state, specs, app_id, rank, utilities, placed_nodes
                )
        return placed_any

    def _search_is_worthwhile(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
        allocations: Mapping[str, float],
    ) -> bool:
        """Skip the expensive search when no removal can pay off.

        A removal-based change must eventually clear the preemption
        penalty, so the search is only entered when either

        * some unplaced candidate's *best-case* relative performance if
          placed right now (its RPF maximum) exceeds its current
          prediction by more than the penalty — the headroom a swap could
          at most realize; with identical jobs this headroom is one
          cycle's goal erosion (``T / relative_goal``), below the
          penalty, which is why Experiment One skips the search entirely
          (the paper's "internal shortcuts"); or
        * some placed application is starved well below the best placed
          application while other nodes still have free CPU — a live
          migration could rebalance.
        """
        gate = max(
            self._config.preemption_penalty, self._config.improvement_epsilon
        )
        for candidate in candidates:
            if state.is_placed(candidate) or candidate not in specs:
                continue
            headroom = specs[candidate].rpf.max_utility - utilities.get(
                candidate, float("-inf")
            )
            if headroom > gate:
                return True

        placed_utilities = {
            a: utilities[a] for a in state.app_ids if a in utilities
        }
        if not placed_utilities:
            return any(
                not state.is_placed(c) for c in candidates if c in specs
            )
        best_placed = max(placed_utilities.values())
        free_names: Optional[List[str]] = None
        if self._fast:
            # One array scan for the nodes with free CPU, instead of an
            # O(nodes) availability probe per starved application.  Same
            # comparison per node, so the same answer.
            cpu_caps, _ = state.capacity_arrays()
            names = list(state.node_index)
            free_mask = (cpu_caps - state.cpu_used_array()) > EPSILON
            free_names = [names[i] for i in np.flatnonzero(free_mask).tolist()]
        for app_id, utility in placed_utilities.items():
            if utility >= best_placed - gate:
                continue
            spec = specs.get(app_id)
            if spec is None:
                continue
            allocated = allocations.get(app_id, 0.0)
            if allocated + EPSILON >= spec.rpf.saturation_cpu:
                continue
            own_nodes = set(state.nodes_of(app_id))
            if free_names is not None:
                if any(n not in own_nodes for n in free_names):
                    return True
            elif any(
                state.cpu_available(n) > EPSILON
                for n in self._cluster.node_names
                if n not in own_nodes
            ):
                return True
        return False

    def _sweep(
        self,
        best_state: PlacementState,
        best_score: PlacementScore,
        best_utilities: Dict[str, float],
        best_allocations: Dict[str, float],
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        evaluate,
        bound_reached: Optional[Callable[[PlacementScore], bool]] = None,
        eval_info: Optional[Dict[str, bool]] = None,
    ):
        """One outer-loop pass over all nodes.  Returns
        ``(improved, state, score, utilities, allocations)``."""
        improved = False
        fast = self._fast
        use_frontier = (
            fast and self._config.vectorize and not len(self._constraints)
        )
        frontier: Optional[_FrontierIndex] = None
        frontier_base: Optional[PlacementState] = None
        audit = self._audit

        # Outer loop: visit nodes hosting the highest-utility instances
        # first — they are the most promising donors of capacity.
        if fast:
            # One pass over placements instead of an O(apps) scan per
            # node: per-node max of hosted apps' utilities, same key.
            node_best: Dict[str, float] = {}
            for app_id in best_state.app_ids:
                utility = best_utilities.get(app_id, float("-inf"))
                for node_name, count in best_state.instance_items(app_id):
                    if count > 0 and utility > node_best.get(
                        node_name, float("-inf")
                    ):
                        node_best[node_name] = utility

            def node_key(node: str) -> float:
                return node_best.get(node, float("-inf"))

        else:

            def node_key(node: str) -> float:
                apps = best_state.apps_on(node)
                if not apps:
                    return float("-inf")
                return max(best_utilities.get(a, float("-inf")) for a in apps)

        for node in sorted(self._cluster.node_names, key=node_key, reverse=True):
            # All of this node's candidate configurations are built from
            # the same base (competing alternatives for the node); an
            # adopted candidate becomes the base for *subsequent* nodes.
            node_base = best_state
            # Intermediate loop: cumulative removals, highest utility first.
            removable: List[str] = []
            for app_id in sorted(
                node_base.apps_on(node),
                key=lambda a: best_utilities.get(a, float("-inf")),
                reverse=True,
            ):
                removable.extend([app_id] * node_base.instances_on(app_id, node))
            if self._config.max_removals_per_node is not None:
                removable = removable[: self._config.max_removals_per_node]

            for removals in range(len(removable) + 1):
                if removals == 0 and fast:
                    # The zero-removal trial is the incumbent plus
                    # whatever the fill pass can add.  The fill's first
                    # placement decision depends only on the unmodified
                    # base, so when nothing can be placed there, the
                    # trial is the incumbent itself — skip it without
                    # paying for the state copy.
                    if use_frontier:
                        if frontier_base is not node_base:
                            with self._span("apc.frontier"):
                                frontier = _FrontierIndex.build(
                                    node_base, specs, candidates
                                )
                            frontier_base = node_base
                        fillable = frontier.fill_possible(
                            node_base.memory_available(node),
                            self._node_committed_min(node_base, specs, node),
                            self._cluster.node(node).cpu_capacity,
                            node,
                        )
                    else:
                        fillable = self._fill_possible(
                            node_base, specs, candidates, best_utilities, node
                        )
                    if not fillable:
                        if self._c_shortcut is not None:
                            self._c_shortcut.inc(kind="node_noop")
                        if audit is not None:
                            audit.shortcircuit("node_noop", node=node)
                        continue
                trial = node_base.copy()
                for app_id in removable[:removals]:
                    trial.remove(app_id, node)
                filled = self._fill_node(
                    trial, specs, candidates, best_utilities, node,
                    forbidden=set(removable[:removals]),
                )
                if removals == 0 and not filled:
                    continue  # identical to the incumbent placement
                # Preemptive configs (those that suspend/relocate running
                # instances) must clear the preemption penalty; pure
                # additions only the noise threshold.
                tolerance = (
                    max(
                        self._config.preemption_penalty,
                        self._config.improvement_epsilon,
                    )
                    if removals > 0
                    else None
                )
                score, utilities, allocations = evaluate(trial, tolerance=tolerance)
                adopted = self._objective.better(score, best_score)
                if audit is not None:
                    audit.candidate(
                        stage="search",
                        accepted=adopted,
                        reason="improved" if adopted else "no_improvement",
                        utilities=utilities,
                        comparison=self._objective.explain(score, best_score),
                        node=node,
                        removals=removals,
                        churn=score.num_changes,
                        cached=(
                            eval_info["cached"] if eval_info is not None else None
                        ),
                        tolerance=score.utilities.tolerance,
                    )
                if adopted:
                    best_state, best_score = trial, score
                    best_utilities, best_allocations = utilities, allocations
                    improved = True
                    if bound_reached is not None and bound_reached(best_score):
                        if self._c_shortcut is not None:
                            self._c_shortcut.inc(kind="upper_bound")
                        if audit is not None:
                            audit.shortcircuit("upper_bound", node=node)
                        return (
                            improved,
                            best_state,
                            best_score,
                            best_utilities,
                            best_allocations,
                        )
        return improved, best_state, best_score, best_utilities, best_allocations

    def _node_committed_min(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        node: str,
    ) -> float:
        """Sum of placed instances' minimum speeds on one node."""
        committed = 0.0
        for app_id in state.apps_on(node):
            spec = specs.get(app_id)
            if spec is None:
                continue
            committed += spec.demand.min_cpu_mhz * state.instances_on(app_id, node)
        return committed

    def _fill_possible(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
        node: str,
    ) -> bool:
        """Would :meth:`_fill_node` place anything on an *unmodified*
        ``state``?  Equivalent because the fill's first placement
        decision sees exactly this state; used to recognize no-op
        zero-removal trials before paying for the state copy."""
        committed = self._node_committed_min(state, specs, node)
        capacity = self._cluster.node(node).cpu_capacity
        for c in candidates:
            spec = specs.get(c)
            if spec is None:
                continue
            if not spec.demand.divisible and state.is_placed(c):
                continue
            if state.instances_on(c, node) != 0:
                continue
            if (
                self._can_host(state, spec, node)
                and committed + spec.demand.min_cpu_mhz <= capacity + EPSILON
            ):
                return True
        return False

    def _fill_node(
        self,
        state: PlacementState,
        specs: Mapping[str, AllocatableApp],
        candidates: Sequence[str],
        utilities: Mapping[str, float],
        node: str,
        forbidden: set,
    ) -> bool:
        """Inner loop: place new instances on ``node``, LRPF order."""
        placed_any = False
        eligible = [
            c
            for c in candidates
            if c in specs
            and c not in forbidden
            and (specs[c].demand.divisible or not state.is_placed(c))
            and state.instances_on(c, node) == 0
        ]
        eligible = self._admission.order(eligible, specs, utilities)
        if self._audit is not None and eligible:
            self._audit.note_fill(node, eligible)
        if self._fast:
            # Maintain the node's committed-min sum across placements
            # instead of rescanning every hosted application per check.
            committed = self._node_committed_min(state, specs, node)
            capacity = self._cluster.node(node).cpu_capacity
            for app_id in eligible:
                spec = specs[app_id]
                min_cpu = spec.demand.min_cpu_mhz
                if (
                    self._can_host(state, spec, node)
                    and committed + min_cpu <= capacity + EPSILON
                ):
                    state.place(app_id, node, spec.demand.memory_mb)
                    committed += min_cpu
                    placed_any = True
            return placed_any
        for app_id in eligible:
            spec = specs[app_id]
            if self._can_host(state, spec, node) and self._min_cpu_fits(
                state, specs, node, spec.demand.min_cpu_mhz
            ):
                state.place(app_id, node, spec.demand.memory_mb)
                placed_any = True
        return placed_any
