"""Relative performance of transactional applications.

§3.3, equation (1): with response-time goal ``τ_m`` and observed (or
modeled) response time ``t_m``,

    u_m(t_m) = (τ_m − t_m) / τ_m

Composing the queuing model ``t_m(ω_m)`` yields the RPF of the CPU
allocation used by the placement controller, together with its inverse
``ω_m(u)``.
"""

from __future__ import annotations

from repro.core.rpf import NEGATIVE_INFINITY_UTILITY
from repro.errors import ConfigurationError
from repro.txn.queuing import ResponseTimeModel
from repro.units import EPSILON


class TransactionalRPF:
    """``u_m(ω) = (τ_m − t_m(ω)) / τ_m`` for one transactional application.

    Implements the :class:`~repro.core.rpf.RelativePerformanceFunction`
    protocol.  Monotone non-decreasing in the allocation; saturates at
    ``u_max = (τ − t_min)/τ`` (the response time cannot be reduced below
    the bare service time no matter how much CPU is granted — the paper's
    0.66 plateau in Experiment Three); clamped below at
    :data:`~repro.core.rpf.NEGATIVE_INFINITY_UTILITY` for allocations that
    cannot sustain the offered load.
    """

    def __init__(self, model: ResponseTimeModel, response_time_goal: float) -> None:
        if response_time_goal <= 0:
            raise ConfigurationError(
                f"response time goal must be positive, got {response_time_goal}"
            )
        self._model = model
        self._goal = response_time_goal

    @property
    def model(self) -> ResponseTimeModel:
        return self._model

    @property
    def response_time_goal(self) -> float:
        return self._goal

    def utility_of_response_time(self, response_time: float) -> float:
        """Equation (1), clamped below at the library's utility floor."""
        if response_time == float("inf"):
            return NEGATIVE_INFINITY_UTILITY
        u = (self._goal - response_time) / self._goal
        return max(NEGATIVE_INFINITY_UTILITY, u)

    @property
    def max_utility(self) -> float:
        return self.utility_of_response_time(self._model.min_response_time)

    @property
    def saturation_cpu(self) -> float:
        return self._model.saturation_cpu

    def utility(self, cpu_mhz: float) -> float:
        return self.utility_of_response_time(self._model.response_time(cpu_mhz))

    def required_cpu(self, utility: float) -> float:
        if utility > self.max_utility + EPSILON:
            return float("inf")
        target_response = self._goal * (1.0 - utility)
        if target_response <= 0:
            return float("inf")
        return self._model.required_cpu(target_response)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionalRPF(goal={self._goal:.3f}s, "
            f"u_max={self.max_utility:.3f}, "
            f"saturation={self.saturation_cpu:.0f}MHz)"
        )
