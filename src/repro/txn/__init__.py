"""Transactional (interactive web) workload substrate.

Implements §3.1 and §3.3 of the paper: the queuing-theoretic response-time
performance model, the relative performance function
``u_m = (τ_m − t_m)/τ_m``, the request router (weighted load balancing
with overload protection), the work profiler (regression-based per-request
CPU demand estimation), and arrival-intensity traces.
"""

from repro.txn.queuing import (
    ResponseTimeModel,
    ProcessorSharingModel,
    ErlangCModel,
    calibrate_processor_sharing,
)
from repro.txn.rpf import TransactionalRPF
from repro.txn.application import TransactionalApp
from repro.txn.workload import (
    ArrivalTrace,
    ConstantTrace,
    StepTrace,
    PiecewiseTrace,
    SinusoidTrace,
)
from repro.txn.router import RequestRouter, RoutingDecision
from repro.txn.profiler import WorkProfiler, UtilizationSample
from repro.txn.model import TransactionalWorkloadModel

__all__ = [
    "ResponseTimeModel",
    "ProcessorSharingModel",
    "ErlangCModel",
    "calibrate_processor_sharing",
    "TransactionalRPF",
    "TransactionalApp",
    "ArrivalTrace",
    "ConstantTrace",
    "StepTrace",
    "PiecewiseTrace",
    "SinusoidTrace",
    "RequestRouter",
    "RoutingDecision",
    "WorkProfiler",
    "UtilizationSample",
    "TransactionalWorkloadModel",
]
