"""Queuing-theoretic response-time models for transactional applications.

§3.3: the system "leverage[s] the request router's performance model and
the application resource usage profile to estimate t_m as a function of
the CPU speed allocated to the application, t_m(ω_m)".  The model itself
comes from the Pacifici et al. middleware [21]; we implement two faithful
open-queuing variants:

:class:`ProcessorSharingModel`
    The application cluster is an open processor-sharing queue running at
    the aggregate allocated speed ``ω``, with a per-request speed ceiling
    of one processor (``σ``):

        t(ω) = max( d/σ,  d / (ω − λ·d) )        for ω > λ·d

    where ``λ`` is the request arrival rate (req/s) and ``d`` the average
    per-request CPU demand (Mcycles).  The ``d/σ`` floor captures the
    paper's observation that "the response time cannot be reduced to zero
    by continually increasing the CPU power assigned": a single request
    runs on one processor, so response time saturates at the bare service
    time.  Response time saturates exactly at ``ω_sat = λ·d + σ``.

:class:`ErlangCModel`
    An M/M/c model where the allocation ``ω`` buys ``c = ω/σ`` servers of
    rate ``μ = σ/d`` each; mean response time is ``1/μ`` plus the Erlang-C
    waiting time.  Fractional ``c`` is handled by linear interpolation
    between adjacent integer server counts.

Both expose the pair of queries the RPF layer needs: ``response_time(ω)``
and its inverse ``required_cpu(t)``.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError, ModelError
from repro.units import EPSILON


@runtime_checkable
class ResponseTimeModel(Protocol):
    """Average response time as a (decreasing) function of allocated CPU."""

    def response_time(self, cpu_mhz: float) -> float:
        """Mean response time (s) at allocation ``cpu_mhz``; ``inf`` when
        the allocation cannot sustain the offered load."""
        ...

    def required_cpu(self, response_time: float) -> float:
        """Smallest allocation achieving the target mean response time;
        ``inf`` when the target is below the model's floor."""
        ...

    @property
    def offered_load(self) -> float:
        """``λ·d``: the CPU power consumed by the raw request stream."""
        ...

    @property
    def min_response_time(self) -> float:
        """The response-time floor (bare service time)."""
        ...

    @property
    def saturation_cpu(self) -> float:
        """Smallest allocation achieving the response-time floor
        (may be ``inf`` for models that only approach it asymptotically)."""
        ...


class ProcessorSharingModel:
    """Open processor-sharing queue with a single-request speed ceiling."""

    def __init__(
        self,
        arrival_rate: float,
        demand_mcycles: float,
        single_thread_speed_mhz: float,
    ) -> None:
        if arrival_rate < 0:
            raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate}")
        if demand_mcycles <= 0:
            raise ConfigurationError(
                f"per-request demand must be positive, got {demand_mcycles}"
            )
        if single_thread_speed_mhz <= 0:
            raise ConfigurationError(
                f"single-thread speed must be positive, got {single_thread_speed_mhz}"
            )
        self._rate = arrival_rate
        self._demand = demand_mcycles
        self._sigma = single_thread_speed_mhz

    @property
    def arrival_rate(self) -> float:
        return self._rate

    @property
    def demand_mcycles(self) -> float:
        return self._demand

    @property
    def offered_load(self) -> float:
        return self._rate * self._demand

    @property
    def min_response_time(self) -> float:
        return self._demand / self._sigma

    @property
    def saturation_cpu(self) -> float:
        return self.offered_load + self._sigma

    def response_time(self, cpu_mhz: float) -> float:
        if self._rate <= EPSILON:
            # No traffic: a single request sees the bare service time.
            return self.min_response_time
        surplus = cpu_mhz - self.offered_load
        if surplus <= EPSILON:
            return float("inf")
        return max(self.min_response_time, self._demand / surplus)

    def required_cpu(self, response_time: float) -> float:
        if response_time <= 0:
            return float("inf")
        if response_time < self.min_response_time - EPSILON:
            return float("inf")
        if self._rate <= EPSILON:
            return 0.0
        # t = d / (ω − λd)  =>  ω = λd + d/t, capped at the saturation point.
        return min(self.saturation_cpu, self.offered_load + self._demand / response_time)

    def with_rate(self, arrival_rate: float) -> "ProcessorSharingModel":
        """The same application under a different arrival intensity."""
        return ProcessorSharingModel(arrival_rate, self._demand, self._sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessorSharingModel(λ={self._rate:.2f}/s, d={self._demand:.1f}Mcy, "
            f"σ={self._sigma:.0f}MHz)"
        )


def _erlang_c_wait_probability(servers: int, offered_erlangs: float) -> float:
    """Erlang-C probability that an arriving request must wait.

    Computed with the numerically stable recurrence on the Erlang-B
    blocking probability: ``B(0)=1; B(k)=a·B(k−1)/(k+a·B(k−1))``, then
    ``C = B/(1 − ρ(1 − B))``.
    """
    if servers <= 0:
        return 1.0
    a = offered_erlangs
    if a <= 0:
        return 0.0
    rho = a / servers
    if rho >= 1.0:
        return 1.0
    # Far above the offered load the wait probability is smaller than
    # double precision can resolve; skip the recurrence (this also keeps
    # the cost bounded when callers probe very large allocations).
    if servers > a + 8.0 * math.sqrt(a) + 50.0:
        return 0.0
    b = 1.0
    for k in range(1, servers + 1):
        b = a * b / (k + a * b)
    return b / (1.0 - rho * (1.0 - b))


class ErlangCModel:
    """M/M/c response-time model: allocation buys servers."""

    def __init__(
        self,
        arrival_rate: float,
        demand_mcycles: float,
        single_thread_speed_mhz: float,
    ) -> None:
        if arrival_rate < 0:
            raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate}")
        if demand_mcycles <= 0:
            raise ConfigurationError(
                f"per-request demand must be positive, got {demand_mcycles}"
            )
        if single_thread_speed_mhz <= 0:
            raise ConfigurationError(
                f"single-thread speed must be positive, got {single_thread_speed_mhz}"
            )
        self._rate = arrival_rate
        self._demand = demand_mcycles
        self._sigma = single_thread_speed_mhz
        self._mu = single_thread_speed_mhz / demand_mcycles  # per-server rate

    @property
    def arrival_rate(self) -> float:
        return self._rate

    @property
    def demand_mcycles(self) -> float:
        return self._demand

    @property
    def offered_load(self) -> float:
        return self._rate * self._demand

    @property
    def min_response_time(self) -> float:
        return 1.0 / self._mu

    @property
    def saturation_cpu(self) -> float:
        # M/M/c only approaches the floor asymptotically; report the point
        # where waiting time falls below 0.1% of service time.
        target = self.min_response_time * 1.001
        required = self.required_cpu(target)
        return required

    def _response_time_servers(self, servers: int) -> float:
        if self._rate <= EPSILON:
            return self.min_response_time
        a = self._rate / self._mu
        if servers <= a + EPSILON:
            return float("inf")
        c_wait = _erlang_c_wait_probability(servers, a)
        return 1.0 / self._mu + c_wait / (servers * self._mu - self._rate)

    def response_time(self, cpu_mhz: float) -> float:
        if self._rate <= EPSILON:
            return self.min_response_time
        servers = cpu_mhz / self._sigma
        if servers < 1.0:
            # Less than one server: a PS fraction of one processor.
            surplus = cpu_mhz - self.offered_load
            if surplus <= EPSILON:
                return float("inf")
            return max(self.min_response_time, self._demand / surplus)
        lo = math.floor(servers)
        hi = lo + 1
        t_lo = self._response_time_servers(lo)
        t_hi = self._response_time_servers(hi)
        if math.isinf(t_lo):
            # Interpolating against inf is meaningless; fall back to the
            # feasible endpoint scaled by the fractional shortfall.
            return t_hi if servers >= hi - EPSILON else float("inf")
        frac = servers - lo
        return t_lo + frac * (t_hi - t_lo)

    def required_cpu(self, response_time: float) -> float:
        if response_time <= 0 or response_time < self.min_response_time * (1.0 - 1e-9):
            return float("inf")
        if self._rate <= EPSILON:
            return 0.0
        # The curve approaches the floor asymptotically; targets within
        # rounding distance of it would demand astronomically many
        # servers for no modelled benefit — clamp to a hair above.
        target = max(response_time, self.min_response_time * (1.0 + 1e-6))
        # Monotone decreasing response_time(ω): bisect.
        lo = self.offered_load
        hi = max(self.offered_load * 2.0, self._sigma * 2.0)
        while self.response_time(hi) > target and hi < 1e12:
            hi *= 2.0
        if self.response_time(hi) > target:
            raise ModelError(
                f"target response time {target}s unreachable below 1e12 MHz"
            )
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if self.response_time(mid) > target:
                lo = mid
            else:
                hi = mid
        return hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ErlangCModel(λ={self._rate:.2f}/s, d={self._demand:.1f}Mcy, "
            f"σ={self._sigma:.0f}MHz)"
        )


def calibrate_processor_sharing(
    max_utility: float,
    saturation_cpu_mhz: float,
    single_thread_speed_mhz: float,
    min_response_time: float = 0.1,
) -> "tuple[ProcessorSharingModel, float]":
    """Build a PS model + goal hitting two observable anchors.

    Experiment Three specifies the transactional workload only through two
    anchors: its maximum achievable relative performance (≈ 0.66) and the
    allocation at which it saturates (≈ 130,000 MHz).  Given those, a
    single-thread speed ``σ`` and a chosen bare service time, this returns
    ``(model, response_time_goal)`` such that:

    * ``u_max = (τ − t_min)/τ = max_utility``, and
    * ``response_time(ω)`` reaches its floor exactly at
      ``saturation_cpu_mhz``.
    """
    if not 0 < max_utility < 1:
        raise ConfigurationError(f"max utility must be in (0,1), got {max_utility}")
    if min_response_time <= 0:
        raise ConfigurationError(
            f"min response time must be positive, got {min_response_time}"
        )
    if saturation_cpu_mhz <= single_thread_speed_mhz:
        raise ConfigurationError(
            "saturation allocation must exceed the single-thread speed"
        )
    demand = min_response_time * single_thread_speed_mhz
    goal = min_response_time / (1.0 - max_utility)
    arrival_rate = (saturation_cpu_mhz - single_thread_speed_mhz) / demand
    model = ProcessorSharingModel(arrival_rate, demand, single_thread_speed_mhz)
    return model, goal


def calibrate_erlang_c(
    max_utility: float,
    saturation_cpu_mhz: float,
    single_thread_speed_mhz: float,
    min_response_time: float = 0.1,
    utilization_at_saturation: float = 0.677,
) -> "tuple[ErlangCModel, float]":
    """Build an M/M/c model + goal hitting Experiment Three's anchors
    with a *gradual* degradation below the saturation point.

    The processor-sharing calibration
    (:func:`calibrate_processor_sharing`) pins the offered load just
    below the saturation allocation, which makes any allocation under
    ~97% of saturation unstable — too brittle to reproduce the paper's
    static 6-node partition, whose transactional relative performance is
    merely *lower* (≈0.4-0.55), not catastrophic.  The M/M/c curve is
    soft: waiting time decays smoothly as servers are added.

    ``utilization_at_saturation`` fixes the offered load as a fraction of
    the saturation allocation (the default leaves the paper's 6/9-node
    partition split on opposite sides of "satisfied").  Returns
    ``(model, response_time_goal)`` with

    * ``u_max = (τ − t_min)/τ = max_utility``, and
    * relative performance within ~1% of the plateau at
      ``saturation_cpu_mhz``.
    """
    if not 0 < max_utility < 1:
        raise ConfigurationError(f"max utility must be in (0,1), got {max_utility}")
    if not 0 < utilization_at_saturation < 1:
        raise ConfigurationError(
            "utilization at saturation must be in (0,1), got "
            f"{utilization_at_saturation}"
        )
    if min_response_time <= 0:
        raise ConfigurationError(
            f"min response time must be positive, got {min_response_time}"
        )
    if saturation_cpu_mhz <= single_thread_speed_mhz:
        raise ConfigurationError(
            "saturation allocation must exceed the single-thread speed"
        )
    demand = min_response_time * single_thread_speed_mhz
    goal = min_response_time / (1.0 - max_utility)
    offered = utilization_at_saturation * saturation_cpu_mhz
    arrival_rate = offered / demand
    model = ErlangCModel(arrival_rate, demand, single_thread_speed_mhz)
    return model, goal
