"""Transactional application descriptor.

A transactional web application is served by a cluster of application
server instances replicated across nodes (§3.1).  Each application
carries:

* a memory footprint per instance (the load-independent demand of §3.2),
* an average per-request CPU demand (estimated online by the work
  profiler in the real system),
* a response-time goal ``τ_m``,
* an arrival-intensity trace (what the request router observes).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.txn.queuing import (
    ErlangCModel,
    ProcessorSharingModel,
    ResponseTimeModel,
    calibrate_erlang_c,
    calibrate_processor_sharing,
)
from repro.txn.rpf import TransactionalRPF
from repro.txn.workload import ArrivalTrace, ConstantTrace


class TransactionalApp:
    """One transactional web application under management."""

    def __init__(
        self,
        app_id: str,
        memory_mb: float,
        demand_mcycles: float,
        response_time_goal: float,
        trace: ArrivalTrace,
        single_thread_speed_mhz: float,
        max_instances: Optional[int] = None,
        model_type: str = "ps",
    ) -> None:
        if not app_id:
            raise ConfigurationError("application id must be non-empty")
        if memory_mb < 0:
            raise ConfigurationError(f"memory must be >= 0, got {memory_mb}")
        if demand_mcycles <= 0:
            raise ConfigurationError(
                f"per-request demand must be positive, got {demand_mcycles}"
            )
        if response_time_goal <= 0:
            raise ConfigurationError(
                f"response time goal must be positive, got {response_time_goal}"
            )
        if single_thread_speed_mhz <= 0:
            raise ConfigurationError(
                f"single-thread speed must be positive, got {single_thread_speed_mhz}"
            )
        self.app_id = app_id
        self.memory_mb = memory_mb
        self.demand_mcycles = demand_mcycles
        self.response_time_goal = response_time_goal
        self.trace = trace
        self.single_thread_speed_mhz = single_thread_speed_mhz
        self.max_instances = max_instances
        if model_type not in ("ps", "erlang"):
            raise ConfigurationError(
                f"model_type must be 'ps' or 'erlang', got {model_type!r}"
            )
        #: Which queuing model backs the performance predictions:
        #: ``"ps"`` (processor sharing with a hard service-time floor) or
        #: ``"erlang"`` (M/M/c with a soft approach to the floor).
        self.model_type = model_type

    @classmethod
    def calibrated(
        cls,
        app_id: str,
        memory_mb: float,
        max_utility: float,
        saturation_cpu_mhz: float,
        single_thread_speed_mhz: float,
        min_response_time: float = 0.1,
        max_instances: Optional[int] = None,
        model_type: str = "erlang",
    ) -> "TransactionalApp":
        """Build an application from Experiment Three's two anchors:
        its maximum achievable relative performance and the allocation at
        which it saturates.

        ``model_type="erlang"`` (default) gives the soft sub-saturation
        degradation the paper's static-partition results require (see
        :func:`~repro.txn.queuing.calibrate_erlang_c`);
        ``model_type="ps"`` pins the offered load just under saturation
        (see :func:`~repro.txn.queuing.calibrate_processor_sharing`)."""
        if model_type == "erlang":
            model, goal = calibrate_erlang_c(
                max_utility=max_utility,
                saturation_cpu_mhz=saturation_cpu_mhz,
                single_thread_speed_mhz=single_thread_speed_mhz,
                min_response_time=min_response_time,
            )
            arrival_rate = model.arrival_rate
        else:
            model, goal = calibrate_processor_sharing(
                max_utility=max_utility,
                saturation_cpu_mhz=saturation_cpu_mhz,
                single_thread_speed_mhz=single_thread_speed_mhz,
                min_response_time=min_response_time,
            )
            arrival_rate = model.arrival_rate
        return cls(
            app_id=app_id,
            memory_mb=memory_mb,
            demand_mcycles=min_response_time * single_thread_speed_mhz,
            response_time_goal=goal,
            trace=ConstantTrace(arrival_rate),
            single_thread_speed_mhz=single_thread_speed_mhz,
            max_instances=max_instances,
            model_type=model_type,
        )

    # ------------------------------------------------------------------
    # Performance model access
    # ------------------------------------------------------------------
    def arrival_rate(self, now: float) -> float:
        """Arrival intensity at time ``now`` (req/s)."""
        return self.trace.rate(now)

    def model_at(self, now: float) -> ResponseTimeModel:
        """The queuing model under the current arrival intensity."""
        model_cls = ErlangCModel if self.model_type == "erlang" else ProcessorSharingModel
        return model_cls(
            arrival_rate=self.arrival_rate(now),
            demand_mcycles=self.demand_mcycles,
            single_thread_speed_mhz=self.single_thread_speed_mhz,
        )

    def rpf_at(self, now: float) -> TransactionalRPF:
        """The RPF of the CPU allocation under the current intensity."""
        return TransactionalRPF(self.model_at(now), self.response_time_goal)

    def response_time(self, cpu_mhz: float, now: float) -> float:
        """Modeled mean response time at a given allocation and time."""
        return self.model_at(now).response_time(cpu_mhz)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionalApp({self.app_id!r}, goal={self.response_time_goal:.3f}s, "
            f"d={self.demand_mcycles:.1f}Mcy)"
        )
