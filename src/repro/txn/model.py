"""Transactional workload model: plugs web applications into the
placement controller.

Implements the :class:`~repro.core.workload.WorkloadModel` protocol.
Transactional applications are divisible (the request router splits their
load across instances), have no minimum speed, and are always placement
candidates (their clusters can grow/shrink every cycle).  Evaluation is
per-application: unlike batch jobs, a web application's predicted
relative performance depends only on its own aggregate allocation (§3.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

from repro.core.loadbalance import AllocatableApp
from repro.core.placement import AppDemand
from repro.core.rpf import NEGATIVE_INFINITY_UTILITY, PiecewiseLinearRPF
from repro.errors import ConfigurationError
from repro.txn.application import TransactionalApp

#: Allocation-space samples for the piecewise-linear RPF snapshot handed
#: to the load distributor when the app's queuing model has no cheap
#: closed-form inverse (Erlang-C).
_RPF_SNAPSHOT_SAMPLES = 48


class TransactionalWorkloadModel:
    """The transactional workload as seen by the placement controller."""

    def __init__(self, apps: Iterable[TransactionalApp] = ()) -> None:
        self._apps: Dict[str, TransactionalApp] = {}
        for app in apps:
            self.add_app(app)

    def add_app(self, app: TransactionalApp) -> None:
        if app.app_id in self._apps:
            raise ConfigurationError(f"duplicate transactional app: {app.app_id!r}")
        self._apps[app.app_id] = app

    def remove_app(self, app_id: str) -> None:
        if app_id not in self._apps:
            raise ConfigurationError(f"unknown transactional app: {app_id!r}")
        del self._apps[app_id]

    def app(self, app_id: str) -> TransactionalApp:
        try:
            return self._apps[app_id]
        except KeyError:
            raise ConfigurationError(f"unknown transactional app: {app_id!r}") from None

    @property
    def apps(self) -> List[TransactionalApp]:
        return list(self._apps.values())

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._apps

    def __len__(self) -> int:
        return len(self._apps)

    # ------------------------------------------------------------------
    # WorkloadModel protocol
    # ------------------------------------------------------------------
    def app_specs(self, now: float) -> Dict[str, AllocatableApp]:
        specs: Dict[str, AllocatableApp] = {}
        for app in self._apps.values():
            demand = AppDemand(
                app_id=app.app_id,
                memory_mb=app.memory_mb,
                min_cpu_mhz=0.0,
                max_cpu_per_instance_mhz=float("inf"),
                max_instances=app.max_instances,
                divisible=True,
            )
            specs[app.app_id] = AllocatableApp(
                demand=demand, rpf=self._allocation_rpf(app, now)
            )
        return specs

    @staticmethod
    def _allocation_rpf(app: TransactionalApp, now: float):
        """The RPF handed to the load distributor.

        The processor-sharing model has closed-form inverse queries, so
        it is used directly.  The Erlang-C inverse is a bisection over an
        O(servers) recurrence — far too slow for the distributor's inner
        loop — so it is snapshotted once per cycle as a piecewise-linear
        RPF sampled in allocation space (the controller's own evaluation
        of the chosen placement still uses the exact model).
        """
        rpf = app.rpf_at(now)
        if app.model_type != "erlang":
            return rpf
        model = rpf.model
        lo = max(model.offered_load * 1.001, 1.0)
        hi = max(rpf.saturation_cpu * 1.25, lo * 2.0)
        cpus = np.geomspace(lo, hi, _RPF_SNAPSHOT_SAMPLES)
        points = [(0.0, NEGATIVE_INFINITY_UTILITY)]
        last_u = NEGATIVE_INFINITY_UTILITY
        for cpu in cpus:
            u = max(rpf.utility(float(cpu)), last_u)  # enforce monotone
            points.append((float(cpu), u))
            last_u = u
        return PiecewiseLinearRPF(points)

    def placement_candidates(self, now: float) -> List[str]:
        del now
        return list(self._apps)

    def evaluate(
        self, allocations: Mapping[str, float], now: float, horizon: float
    ) -> Dict[str, float]:
        del horizon  # web predictions are steady-state within a cycle
        return {
            app_id: app.rpf_at(now).utility(allocations.get(app_id, 0.0))
            for app_id, app in self._apps.items()
        }
