"""Work profiler: online estimation of per-request CPU demand.

§3.1: "A separate component, called the work profiler, monitors resource
utilization of nodes and (based on a regression model that combines the
utilization values with throughput data) estimates an average CPU
requirement of a single request to any application."

The regression model: in an observation window on node ``n``,

    used_cpu_n  =  Σ_m  throughput_{m,n} · d_m  +  noise

where ``throughput_{m,n}`` is application ``m``'s request completion rate
on the node and ``d_m`` the unknown per-request demand.  Collecting
samples across nodes and windows gives an overdetermined linear system
solved by non-negative least squares (demands cannot be negative; we use
ordinary least squares followed by clipping and a refit over the active
set, which is exact for this well-conditioned diagonal-dominant system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class UtilizationSample:
    """One monitoring window on one node.

    Attributes
    ----------
    throughput:
        Requests/s completed per application during the window.
    used_cpu_mhz:
        CPU consumed on the node during the window (MHz, i.e. Mcycles/s
        averaged over the window).
    """

    throughput: Mapping[str, float]
    used_cpu_mhz: float


class WorkProfiler:
    """Least-squares estimator of per-request CPU demands.

    Samples accumulate in a sliding window; estimates are recomputed on
    demand.  The estimator is deliberately stateless between ``estimates``
    calls — no Kalman-style smoothing — matching the simple regression the
    paper's middleware uses.
    """

    def __init__(self, window: int = 256) -> None:
        if window < 1:
            raise ModelError(f"window must be >= 1, got {window}")
        self._window = window
        self._samples: List[UtilizationSample] = []

    def observe(self, sample: UtilizationSample) -> None:
        """Add one monitoring window; evicts beyond the sliding window."""
        if sample.used_cpu_mhz < 0:
            raise ModelError(f"negative used CPU: {sample.used_cpu_mhz}")
        if any(v < 0 for v in sample.throughput.values()):
            raise ModelError("negative throughput in sample")
        self._samples.append(sample)
        if len(self._samples) > self._window:
            del self._samples[: len(self._samples) - self._window]

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def app_ids(self) -> List[str]:
        ids = set()
        for s in self._samples:
            ids.update(s.throughput)
        return sorted(ids)

    def estimates(self) -> Dict[str, float]:
        """Per-request CPU demand estimates (Mcycles) per application.

        Raises :class:`~repro.errors.ModelError` when no samples exist or
        the system is degenerate (an application never observed with
        nonzero throughput gets no estimate rather than a garbage one).
        """
        if not self._samples:
            raise ModelError("no utilization samples observed")
        apps = self.app_ids()
        if not apps:
            raise ModelError("samples contain no application throughput")
        a = np.zeros((len(self._samples), len(apps)))
        b = np.zeros(len(self._samples))
        for i, s in enumerate(self._samples):
            b[i] = s.used_cpu_mhz
            for j, app in enumerate(apps):
                a[i, j] = s.throughput.get(app, 0.0)

        observed = a.sum(axis=0) > 0
        estimates: Dict[str, float] = {}
        active = list(np.nonzero(observed)[0])
        if not active:
            raise ModelError("all applications have zero observed throughput")

        # OLS on the observed columns, clip negatives, refit the rest.
        while active:
            sol, *_ = np.linalg.lstsq(a[:, active], b, rcond=None)
            negative = [idx for idx, v in zip(active, sol) if v < 0]
            if not negative:
                for idx, v in zip(active, sol):
                    estimates[apps[idx]] = float(v)
                break
            active = [idx for idx in active if idx not in negative]
        for j, app in enumerate(apps):
            estimates.setdefault(app, 0.0)
        return estimates

    def estimate(self, app_id: str) -> float:
        """Demand estimate for one application."""
        est = self.estimates()
        if app_id not in est:
            raise ModelError(f"no estimate for application {app_id!r}")
        return est[app_id]
