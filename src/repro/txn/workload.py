"""Arrival-intensity traces for transactional workloads.

The controller operates on a short cycle precisely because "transactional
workload intensity changes ... may happen frequently and unexpectedly"
(§3.1).  A trace maps simulation time to a request arrival rate (req/s);
the simulator samples it at every control cycle.
"""

from __future__ import annotations

import math
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class ArrivalTrace(Protocol):
    """Request arrival intensity as a function of time."""

    def rate(self, time: float) -> float:
        """Arrival rate (req/s) at simulation time ``time``."""
        ...


class ConstantTrace:
    """A constant arrival rate (Experiment Three keeps the transactional
    workload constant throughout)."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ConfigurationError(f"rate must be >= 0, got {rate}")
        self._rate = rate

    def rate(self, time: float) -> float:
        del time
        return self._rate

    def __repr__(self) -> str:
        return f"ConstantTrace({self._rate:.2f}/s)"


class StepTrace:
    """A single step change at a given time (the introduction's "at time
    t/2, the workload intensity for TA increases" scenario)."""

    def __init__(self, before: float, after: float, step_time: float) -> None:
        if before < 0 or after < 0:
            raise ConfigurationError("rates must be >= 0")
        self._before = before
        self._after = after
        self._step_time = step_time

    def rate(self, time: float) -> float:
        return self._after if time >= self._step_time else self._before

    def __repr__(self) -> str:
        return f"StepTrace({self._before}->{self._after} @ {self._step_time}s)"


class PiecewiseTrace:
    """Piecewise-constant rates over ``[t_i, t_{i+1})`` intervals."""

    def __init__(self, breakpoints: Sequence[Tuple[float, float]]) -> None:
        """``breakpoints`` is a sorted sequence of ``(start_time, rate)``;
        the first segment extends back to ``-inf``, the last to ``+inf``."""
        if not breakpoints:
            raise ConfigurationError("need at least one breakpoint")
        times = [b[0] for b in breakpoints]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("breakpoint times must be strictly increasing")
        if any(b[1] < 0 for b in breakpoints):
            raise ConfigurationError("rates must be >= 0")
        self._breakpoints: List[Tuple[float, float]] = [
            (float(t), float(r)) for t, r in breakpoints
        ]

    def rate(self, time: float) -> float:
        current = self._breakpoints[0][1]
        for start, r in self._breakpoints:
            if time >= start:
                current = r
            else:
                break
        return current

    def __repr__(self) -> str:
        return f"PiecewiseTrace({len(self._breakpoints)} segments)"


class SinusoidTrace:
    """A diurnal-style sinusoidal intensity: ``base + amplitude·sin(...)``,
    clipped at zero."""

    def __init__(
        self, base: float, amplitude: float, period: float, phase: float = 0.0
    ) -> None:
        if base < 0 or amplitude < 0:
            raise ConfigurationError("base and amplitude must be >= 0")
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self._base = base
        self._amplitude = amplitude
        self._period = period
        self._phase = phase

    def rate(self, time: float) -> float:
        value = self._base + self._amplitude * math.sin(
            2.0 * math.pi * time / self._period + self._phase
        )
        return max(0.0, value)

    def __repr__(self) -> str:
        return (
            f"SinusoidTrace(base={self._base}, amp={self._amplitude}, "
            f"period={self._period}s)"
        )
