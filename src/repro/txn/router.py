"""Request router: load balancing and overload protection.

§3.1: "Requests to these applications arrive at an entry router which may
be an L4 or L7 gateway that distributes requests to clustered applications
according to a load balancing mechanism. ... It may also employ an
overload protection mechanism by queuing requests that cannot be
immediately accommodated by server nodes."

The router here implements:

* **weighted load balancing**: the application's arrival stream is split
  across its instances in proportion to the CPU speed each instance was
  allocated (an instance with twice the CPU serves twice the traffic —
  the split that equalizes per-instance utilization and therefore
  response time);
* **overload protection**: per-instance admission is capped at a maximum
  utilization ``ρ_max``; the excess arrival rate is shed to an admission
  queue and reported, never silently dropped.

The router also produces the application-level mean response time
(request-weighted over instances) that the monitoring path feeds back into
the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.txn.queuing import ProcessorSharingModel
from repro.units import EPSILON


@dataclass
class RoutingDecision:
    """Outcome of routing one application's stream for one interval."""

    #: Arrival rate admitted to each instance (req/s), keyed by node.
    admitted: Dict[str, float] = field(default_factory=dict)
    #: Arrival rate in excess of what the instances can absorb (req/s).
    shed_rate: float = 0.0
    #: Request-weighted mean response time across instances (s); ``inf``
    #: when nothing could be admitted while traffic was offered.
    mean_response_time: float = float("inf")

    @property
    def admitted_rate(self) -> float:
        return sum(self.admitted.values())


class RequestRouter:
    """Weighted load balancer with utilization-capped admission."""

    def __init__(self, max_utilization: float = 0.95) -> None:
        if not 0 < max_utilization <= 1.0:
            raise ConfigurationError(
                f"max utilization must be in (0, 1], got {max_utilization}"
            )
        self._max_utilization = max_utilization

    @property
    def max_utilization(self) -> float:
        return self._max_utilization

    def route(
        self,
        arrival_rate: float,
        demand_mcycles: float,
        instance_speeds: Mapping[str, float],
        single_thread_speed_mhz: float,
    ) -> RoutingDecision:
        """Split ``arrival_rate`` across instances.

        Parameters
        ----------
        arrival_rate:
            Offered request rate for the application (req/s).
        demand_mcycles:
            Average CPU demand per request.
        instance_speeds:
            CPU speed allocated to the application on each node hosting an
            instance (the application's column of the load matrix ``L``).
        single_thread_speed_mhz:
            Per-processor speed, bounding a single request's service rate.
        """
        if arrival_rate < 0:
            raise ConfigurationError(f"arrival rate must be >= 0, got {arrival_rate}")
        decision = RoutingDecision()
        speeds = {n: s for n, s in instance_speeds.items() if s > EPSILON}
        total_speed = sum(speeds.values())
        if total_speed <= EPSILON:
            decision.shed_rate = arrival_rate
            decision.mean_response_time = (
                float("inf") if arrival_rate > EPSILON
                else demand_mcycles / single_thread_speed_mhz
            )
            return decision

        # Proportional-to-capacity split equalizes instance utilization.
        remaining_shed = 0.0
        weighted_rt = 0.0
        admitted_total = 0.0
        for node, speed in speeds.items():
            offered = arrival_rate * speed / total_speed
            # Admission cap: λ·d <= ρ_max·ω  per instance.
            cap = self._max_utilization * speed / demand_mcycles
            admitted = min(offered, cap)
            remaining_shed += offered - admitted
            decision.admitted[node] = admitted
            admitted_total += admitted
            model = ProcessorSharingModel(
                arrival_rate=admitted,
                demand_mcycles=demand_mcycles,
                single_thread_speed_mhz=single_thread_speed_mhz,
            )
            rt = model.response_time(speed)
            weighted_rt += admitted * rt

        decision.shed_rate = remaining_shed
        if admitted_total > EPSILON:
            decision.mean_response_time = weighted_rt / admitted_total
        elif arrival_rate <= EPSILON:
            decision.mean_response_time = demand_mcycles / single_thread_speed_mhz
        return decision
