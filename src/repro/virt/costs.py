"""Virtualization action cost model.

The paper measured the duration of VM control operations on a popular
virtualization product and found simple linear relationships between the
VM memory footprint and the cost of the operation (§5):

    Suspend Cost = VM Footprint * 0.0353 s
    Resume Cost  = VM Footprint * 0.0333 s
    Migrate Cost = VM Footprint * 0.0132 s

with footprints in MB, plus a constant observed boot time of 3.6 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class VirtualizationCostModel:
    """Linear-in-footprint cost model for VM control operations.

    All rates are in seconds per MB of VM memory footprint; ``boot_time``
    is a constant in seconds.
    """

    suspend_rate: float = 0.0353
    resume_rate: float = 0.0333
    migrate_rate: float = 0.0132
    boot_time: float = 3.6

    def __post_init__(self) -> None:
        for field_name in ("suspend_rate", "resume_rate", "migrate_rate", "boot_time"):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be >= 0, got {value}")

    def suspend_cost(self, footprint_mb: float) -> float:
        """Seconds to suspend a VM with the given memory footprint."""
        return self.suspend_rate * footprint_mb

    def resume_cost(self, footprint_mb: float) -> float:
        """Seconds to resume a suspended VM with the given footprint."""
        return self.resume_rate * footprint_mb

    def migrate_cost(self, footprint_mb: float) -> float:
        """Seconds to live-migrate a VM with the given footprint."""
        return self.migrate_rate * footprint_mb

    def boot_cost(self, footprint_mb: float) -> float:
        """Seconds to boot a fresh VM.

        The paper observed a constant boot time (3.6 s) independent of
        footprint; the parameter is accepted for interface uniformity.
        """
        del footprint_mb
        return self.boot_time


#: The exact cost model measured in the paper.
PAPER_COST_MODEL = VirtualizationCostModel()

#: A zero-cost model.  Experiment Two explicitly "did not consider the cost
#: of the various types of placement changes"; this model reproduces that
#: configuration.
FREE_COST_MODEL = VirtualizationCostModel(
    suspend_rate=0.0, resume_rate=0.0, migrate_rate=0.0, boot_time=0.0
)
