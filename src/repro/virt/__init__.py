"""Virtualization control mechanisms.

The paper assumes a virtualized system in which VM control mechanisms —
boot, suspend, resume, and live migration — are used to reconfigure
application placement online.  The costs of these mechanisms (the time
they take) were measured by the authors on "a popular virtualization
product for Intel-based machines" and found to be linear in the VM memory
footprint (§5):

* ``suspend_cost = footprint * 0.0353 s/MB``
* ``resume_cost  = footprint * 0.0333 s/MB``
* ``migrate_cost = footprint * 0.0132 s/MB``
* ``boot_time    = 3.6 s`` (constant)

This package implements that cost model and the action/state machinery the
simulator uses to apply placement changes.
"""

from repro.virt.costs import VirtualizationCostModel, PAPER_COST_MODEL, FREE_COST_MODEL
from repro.virt.actions import (
    ActionType,
    PlacementAction,
    diff_placements,
)
from repro.virt.container import Container, ContainerState
from repro.virt.faults import (
    ActionFaultModel,
    FaultOutcome,
    FaultSampler,
    FaultSpec,
    RetryPolicy,
)

__all__ = [
    "VirtualizationCostModel",
    "PAPER_COST_MODEL",
    "FREE_COST_MODEL",
    "ActionType",
    "PlacementAction",
    "diff_placements",
    "Container",
    "ContainerState",
    "ActionFaultModel",
    "FaultOutcome",
    "FaultSampler",
    "FaultSpec",
    "RetryPolicy",
]
