"""Placement change actions.

The controller reconfigures the system by starting, stopping, suspending,
resuming and relocating application instances.  This module defines the
action vocabulary and a helper to diff two placements into raw instance
additions/removals.  Classifying a removal as *stop* versus *suspend* (or
an addition as *boot* versus *resume*) requires workload knowledge (is the
instance a batch job with remaining work?), so that classification is done
by the schedulers, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.virt.costs import VirtualizationCostModel


class ActionType(enum.Enum):
    """The VM control operations available to the controller (§5)."""

    BOOT = "boot"          #: start a fresh instance on a node
    STOP = "stop"          #: stop an instance (discarding its state)
    SUSPEND = "suspend"    #: suspend a running instance, keeping its state
    RESUME = "resume"      #: resume a suspended instance on the same node
    MIGRATE = "migrate"    #: move a (running or suspended) instance to another node


#: Action types counted as "placement changes" in Experiment Two's Figure 4
#: ("Number of jobs migrated, suspended, and moved and resumed").  Boots of
#: fresh instances are normal dispatch, not reconfiguration churn.
CHANGE_ACTIONS = frozenset({ActionType.SUSPEND, ActionType.RESUME, ActionType.MIGRATE})


@dataclass(frozen=True)
class PlacementAction:
    """One control operation against one application instance.

    ``duration`` is the wall-clock cost of the operation according to the
    active :class:`~repro.virt.costs.VirtualizationCostModel`.
    """

    action: ActionType
    app_id: str
    node: str
    source_node: Optional[str] = None
    duration: float = 0.0

    def __str__(self) -> str:
        if self.action is ActionType.MIGRATE:
            return (
                f"{self.action.value} {self.app_id}: "
                f"{self.source_node} -> {self.node} ({self.duration:.2f}s)"
            )
        return f"{self.action.value} {self.app_id} @ {self.node} ({self.duration:.2f}s)"


def action_duration(
    action: ActionType, footprint_mb: float, costs: VirtualizationCostModel
) -> float:
    """Duration of ``action`` on a VM with the given memory footprint."""
    if action is ActionType.BOOT:
        return costs.boot_cost(footprint_mb)
    if action is ActionType.STOP:
        return 0.0
    if action is ActionType.SUSPEND:
        return costs.suspend_cost(footprint_mb)
    if action is ActionType.RESUME:
        return costs.resume_cost(footprint_mb)
    if action is ActionType.MIGRATE:
        return costs.migrate_cost(footprint_mb)
    raise AssertionError(f"unhandled action type: {action!r}")


Placement = Mapping[str, Mapping[str, int]]


def diff_placements(
    old: Placement, new: Placement
) -> Tuple[List[Tuple[str, str, int]], List[Tuple[str, str, int]]]:
    """Diff two placements into per-(app, node) instance deltas.

    Both placements map ``app_id -> {node_name: instance_count}``.

    Returns ``(removals, additions)``; each entry is
    ``(app_id, node_name, count)`` with ``count > 0``.  Entries are sorted
    for determinism.
    """
    removals: List[Tuple[str, str, int]] = []
    additions: List[Tuple[str, str, int]] = []
    app_ids = set(old) | set(new)
    for app_id in sorted(app_ids):
        old_nodes: Dict[str, int] = dict(old.get(app_id, {}))
        new_nodes: Dict[str, int] = dict(new.get(app_id, {}))
        for node in sorted(set(old_nodes) | set(new_nodes)):
            delta = new_nodes.get(node, 0) - old_nodes.get(node, 0)
            if delta < 0:
                removals.append((app_id, node, -delta))
            elif delta > 0:
                additions.append((app_id, node, delta))
    return removals, additions
