"""Fault injection for placement actions.

The paper's controller assumes every boot/suspend/resume/migrate it
issues succeeds after a deterministic cost.  Real actuators are not so
kind: control operations fail outright (hypervisor races, transient
image-store errors) or stall (a live migration that never converges).
This module models that unreliability as a *seeded, deterministic*
process the simulator consults before committing each action:

* :class:`FaultSpec` — per-action-type failure/stall probabilities and a
  stall-duration distribution;
* :class:`ActionFaultModel` — the full model: one spec per action type
  plus optional per-node flakiness multipliers and the seed.  The model
  itself is immutable configuration; each simulation run derives a fresh
  :class:`FaultSampler` from it, so re-running the same scenario with
  the same seed reproduces the same fault sequence bit for bit;
* :class:`RetryPolicy` — capped exponential backoff with seeded jitter,
  used by the simulator's reconciliation loop to re-issue failed
  actions;
* :class:`FaultOutcome` — one sampled verdict (ok / failed / stalled
  with a duration).

The model is strictly opt-in: a simulator configured without one (the
default) never draws a random number and behaves exactly as before.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError
from repro.virt.actions import ActionType


@dataclass(frozen=True)
class FaultSpec:
    """Failure behavior of one action type.

    Attributes
    ----------
    failure_probability:
        Chance the action fails immediately (the actuator reports an
        error; nothing moved).
    stall_probability:
        Chance the action neither succeeds nor fails promptly but hangs,
        holding its resources.  Sampled only when the action did not
        fail outright.
    stall_duration_mean:
        Mean of the exponential stall-duration distribution (seconds).
        A sampled stall shorter than the supervisor's timeout merely
        delays the action; a longer one is detected as a failure when
        the timeout fires.
    """

    failure_probability: float = 0.0
    stall_probability: float = 0.0
    stall_duration_mean: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_probability <= 1.0:
            raise ConfigurationError(
                f"failure probability must be in [0, 1], got {self.failure_probability}"
            )
        if not 0.0 <= self.stall_probability <= 1.0:
            raise ConfigurationError(
                f"stall probability must be in [0, 1], got {self.stall_probability}"
            )
        if self.stall_duration_mean <= 0.0:
            raise ConfigurationError(
                f"stall duration mean must be positive, got {self.stall_duration_mean}"
            )

    @property
    def active(self) -> bool:
        return self.failure_probability > 0.0 or self.stall_probability > 0.0


@dataclass(frozen=True)
class FaultOutcome:
    """One sampled verdict for one action attempt."""

    failed: bool = False
    stalled: bool = False
    stall_duration: float = 0.0


#: The always-succeeds outcome (no fault model, or an inactive spec).
OUTCOME_OK = FaultOutcome()


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for failed placement actions.

    ``backoff(n)`` — the delay before retry ``n`` (after the ``n``-th
    failure) — is ``base_delay * multiplier**(n-1)``, capped at
    ``max_delay``, with a multiplicative jitter of up to ``jitter``
    drawn from the run's seeded RNG (so same-seed runs back off
    identically).
    """

    max_attempts: int = 3
    base_delay: float = 10.0
    multiplier: float = 2.0
    jitter: float = 0.1
    max_delay: float = 600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay <= 0.0:
            raise ConfigurationError(
                f"base delay must be positive, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.jitter < 0.0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max delay {self.max_delay} below base delay {self.base_delay}"
            )

    def backoff(self, failures: int, rng: random.Random) -> float:
        """Delay before the next retry after ``failures`` failed attempts."""
        if failures < 1:
            raise ConfigurationError(f"failures must be >= 1, got {failures}")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (failures - 1))
        if self.jitter > 0.0:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


@dataclass(frozen=True)
class ActionFaultModel:
    """Seeded, deterministic unreliability model for placement actions.

    ``specs`` maps each :class:`~repro.virt.actions.ActionType` to its
    :class:`FaultSpec`; unlisted types never fault.  ``node_flakiness``
    multiplies both probabilities for actions whose *target* node is
    listed (a flaky hypervisor makes every operation against it risky);
    the product is clamped to 1.
    """

    specs: Mapping[ActionType, FaultSpec] = field(default_factory=dict)
    node_flakiness: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", dict(self.specs))
        object.__setattr__(self, "node_flakiness", dict(self.node_flakiness))
        for action, spec in self.specs.items():
            if not isinstance(action, ActionType):
                raise ConfigurationError(f"spec key must be an ActionType, got {action!r}")
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(f"spec for {action} must be a FaultSpec")
        for node, mult in self.node_flakiness.items():
            if mult < 0.0:
                raise ConfigurationError(
                    f"node flakiness for {node!r} must be >= 0, got {mult}"
                )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        failure_probability: float = 0.0,
        stall_probability: float = 0.0,
        stall_duration_mean: float = 60.0,
        node_flakiness: Optional[Mapping[str, float]] = None,
        seed: int = 0,
    ) -> "ActionFaultModel":
        """The same spec for every action type the simulator issues."""
        spec = FaultSpec(failure_probability, stall_probability, stall_duration_mean)
        return cls(
            specs={a: spec for a in ActionType},
            node_flakiness=node_flakiness or {},
            seed=seed,
        )

    @classmethod
    def flaky_migrations(
        cls, failure_probability: float, seed: int = 0
    ) -> "ActionFaultModel":
        """Only live migrations fail (the operationally common case)."""
        return cls(
            specs={ActionType.MIGRATE: FaultSpec(failure_probability)}, seed=seed
        )

    @property
    def enabled(self) -> bool:
        """Whether the model can ever produce a fault."""
        return any(spec.active for spec in self.specs.values())

    def sampler(self) -> "FaultSampler":
        """A fresh sampler with its own RNG seeded from this model.

        One sampler per simulation run: reusing the *model* across runs
        is deterministic because each run re-seeds.
        """
        return FaultSampler(self)


class FaultSampler:
    """Draws fault outcomes from an :class:`ActionFaultModel`.

    Holds the run's RNG; the reconciliation loop uses the same RNG for
    retry jitter, so the whole fault/retry sequence is one seeded
    stream.
    """

    def __init__(self, model: ActionFaultModel) -> None:
        self._model = model
        self.rng = random.Random(model.seed)

    @property
    def model(self) -> ActionFaultModel:
        return self._model

    # ------------------------------------------------------------------
    # Snapshot / restore (crash-safe simulations)
    # ------------------------------------------------------------------
    def rng_state(self) -> list:
        """The RNG's exact state as a JSON-serializable list.

        ``random.Random.getstate()`` returns nested tuples; JSON turns
        tuples into lists, so the canonical serialized form is the
        list shape — :meth:`set_rng_state` converts back.
        """
        version, internal, gauss_next = self.rng.getstate()
        return [version, list(internal), gauss_next]

    def set_rng_state(self, state) -> None:
        """Restore a state captured by :meth:`rng_state` (resuming the
        fault/jitter stream exactly where a snapshot left it)."""
        version, internal, gauss_next = state
        self.rng.setstate((version, tuple(internal), gauss_next))

    def sample(self, action: ActionType, node: Optional[str]) -> FaultOutcome:
        """Verdict for one attempt of ``action`` against ``node``."""
        spec = self._model.specs.get(action)
        if spec is None or not spec.active:
            return OUTCOME_OK
        mult = 1.0
        if node is not None:
            mult = self._model.node_flakiness.get(node, 1.0)
        p_fail = min(1.0, spec.failure_probability * mult)
        if self.rng.random() < p_fail:
            return FaultOutcome(failed=True)
        p_stall = min(1.0, spec.stall_probability * mult)
        if p_stall > 0.0 and self.rng.random() < p_stall:
            duration = self.rng.expovariate(1.0 / spec.stall_duration_mean)
            return FaultOutcome(stalled=True, stall_duration=duration)
        return OUTCOME_OK


__all__ = [
    "ActionFaultModel",
    "FaultOutcome",
    "FaultSampler",
    "FaultSpec",
    "OUTCOME_OK",
    "RetryPolicy",
]
