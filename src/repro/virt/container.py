"""Virtual-machine container state machine.

A :class:`Container` wraps one application instance embedded in a VM and
tracks the lifecycle the simulator drives: booting, running, suspending,
suspended, resuming, migrating, stopped.  While a control operation is in
flight the contained workload makes no progress and — except for the
source side of a completed migration — the VM's resources remain reserved
on its node(s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulationError
from repro.virt.actions import ActionType
from repro.virt.costs import VirtualizationCostModel


class ContainerState(enum.Enum):
    """Lifecycle states of a VM container."""

    BOOTING = "booting"
    RUNNING = "running"
    SUSPENDING = "suspending"
    SUSPENDED = "suspended"
    RESUMING = "resuming"
    MIGRATING = "migrating"
    STOPPED = "stopped"


#: States in which the contained workload consumes CPU and makes progress.
ACTIVE_STATES = frozenset({ContainerState.RUNNING})

#: States in which the container occupies memory on its (target) node.
PLACED_STATES = frozenset(
    {
        ContainerState.BOOTING,
        ContainerState.RUNNING,
        ContainerState.SUSPENDING,
        ContainerState.SUSPENDED,
        ContainerState.RESUMING,
        ContainerState.MIGRATING,
    }
)


@dataclass
class Container:
    """One VM instance of an application on (at most) one node.

    The simulator calls :meth:`begin` when it issues a control operation
    and :meth:`complete` when the operation's duration has elapsed.
    """

    app_id: str
    footprint_mb: float
    node: Optional[str] = None
    state: ContainerState = ContainerState.STOPPED
    #: Node the container is migrating to while ``state == MIGRATING``.
    migration_target: Optional[str] = None
    #: Simulation time at which the in-flight operation completes.
    busy_until: float = field(default=0.0)

    @property
    def is_active(self) -> bool:
        """True when the contained workload is executing."""
        return self.state in ACTIVE_STATES

    @property
    def is_placed(self) -> bool:
        """True when the container occupies memory on some node."""
        return self.state in PLACED_STATES

    @property
    def in_transition(self) -> bool:
        """True while a control operation is in flight."""
        return self.state in (
            ContainerState.BOOTING,
            ContainerState.SUSPENDING,
            ContainerState.RESUMING,
            ContainerState.MIGRATING,
        )

    # ------------------------------------------------------------------
    # Operation lifecycle
    # ------------------------------------------------------------------
    def begin(
        self,
        action: ActionType,
        now: float,
        costs: VirtualizationCostModel,
        node: Optional[str] = None,
    ) -> float:
        """Start a control operation; returns its completion time.

        ``node`` is the target node for BOOT and MIGRATE and must be
        ``None`` for the other operations.
        """
        if self.in_transition:
            raise SimulationError(
                f"container {self.app_id} is {self.state.value}; cannot {action.value}"
            )
        if action is ActionType.BOOT:
            if self.state is not ContainerState.STOPPED:
                raise SimulationError(f"cannot boot {self.app_id} from {self.state.value}")
            if node is None:
                raise SimulationError("boot requires a target node")
            self.node = node
            self.state = ContainerState.BOOTING
            duration = costs.boot_cost(self.footprint_mb)
        elif action is ActionType.STOP:
            if self.state not in (ContainerState.RUNNING, ContainerState.SUSPENDED):
                raise SimulationError(f"cannot stop {self.app_id} from {self.state.value}")
            self.state = ContainerState.STOPPED
            self.node = None
            return now
        elif action is ActionType.SUSPEND:
            if self.state is not ContainerState.RUNNING:
                raise SimulationError(
                    f"cannot suspend {self.app_id} from {self.state.value}"
                )
            self.state = ContainerState.SUSPENDING
            duration = costs.suspend_cost(self.footprint_mb)
        elif action is ActionType.RESUME:
            if self.state is not ContainerState.SUSPENDED:
                raise SimulationError(
                    f"cannot resume {self.app_id} from {self.state.value}"
                )
            self.state = ContainerState.RESUMING
            duration = costs.resume_cost(self.footprint_mb)
        elif action is ActionType.MIGRATE:
            if self.state not in (ContainerState.RUNNING, ContainerState.SUSPENDED):
                raise SimulationError(
                    f"cannot migrate {self.app_id} from {self.state.value}"
                )
            if node is None:
                raise SimulationError("migrate requires a target node")
            self.migration_target = node
            self.state = ContainerState.MIGRATING
            duration = costs.migrate_cost(self.footprint_mb)
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled action {action!r}")

        self.busy_until = now + duration
        return self.busy_until

    def complete(self, now: float) -> None:
        """Finish the in-flight operation (called at ``busy_until``)."""
        if not self.in_transition:
            raise SimulationError(
                f"container {self.app_id} has no operation in flight"
            )
        if now + 1e-9 < self.busy_until:
            raise SimulationError(
                f"operation on {self.app_id} completes at {self.busy_until}, not {now}"
            )
        if self.state is ContainerState.BOOTING:
            self.state = ContainerState.RUNNING
        elif self.state is ContainerState.SUSPENDING:
            self.state = ContainerState.SUSPENDED
        elif self.state is ContainerState.RESUMING:
            self.state = ContainerState.RUNNING
        elif self.state is ContainerState.MIGRATING:
            self.node = self.migration_target
            self.migration_target = None
            self.state = ContainerState.RUNNING
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled transition state {self.state!r}")
