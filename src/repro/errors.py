"""Exception hierarchy for the reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still letting programming errors (``TypeError``, ``ValueError`` from
bad arguments, …) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class CapacityError(ReproError):
    """A resource allocation would exceed a node's CPU or memory capacity."""


class PlacementError(ReproError):
    """A placement operation is invalid (duplicate instance, unknown node, …)."""


class SchedulingError(ReproError):
    """A scheduling policy was asked to do something it cannot do."""


class ModelError(ReproError):
    """A performance model was evaluated outside its domain."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""
