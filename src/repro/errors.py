"""Exception hierarchy for the reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause
while still letting programming errors (``TypeError``, ``ValueError`` from
bad arguments, …) propagate normally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or invalid parameters."""


class CapacityError(ReproError):
    """A resource allocation would exceed a node's CPU or memory capacity."""


class PlacementError(ReproError):
    """A placement operation is invalid (duplicate instance, unknown node, …)."""


class SchedulingError(ReproError):
    """A scheduling policy was asked to do something it cannot do."""


class ModelError(ReproError):
    """A performance model was evaluated outside its domain."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CheckpointError(ReproError):
    """A snapshot or sweep checkpoint could not be restored.

    Raised when restoring state that is truncated, malformed, carries an
    unsupported schema version, or does not belong to the object it is
    being restored onto (different config, cluster, or spec set).  The
    message always says *what* was wrong — a bad checkpoint must never
    surface as a bare ``KeyError``.
    """


class ActionFailedError(SimulationError):
    """A placement action could not be committed against the cluster.

    Raised by the reconciliation machinery when a sampled-successful
    action cannot actually be applied (for example, the destination node
    lost capacity to a concurrent outage).  The simulator converts it
    into a failed attempt and drives the retry/abandon state machine;
    it only propagates to callers using the machinery directly.
    """

    def __init__(self, action: str, app_id: str, node: str, reason: str) -> None:
        super().__init__(f"{action} of {app_id!r} on {node!r} failed: {reason}")
        self.action = action
        self.app_id = app_id
        self.node = node
        self.reason = reason
