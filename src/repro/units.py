"""Unit conventions shared across the library.

The paper (and therefore this reproduction) works in the following units:

* **CPU speed / allocation**: megahertz (MHz), interpreted as megacycles
  per second.  A node with four 3.9 GHz processors has a CPU capacity of
  ``4 * 3900 = 15600`` MHz.
* **Work**: megacycles (Mcycles).  A job that needs 68,640,000 Mcycles and
  runs at 3900 MHz completes in ``68_640_000 / 3900 = 17_600`` seconds.
* **Memory**: megabytes (MB).
* **Time**: seconds.

Keeping every quantity in these base units means there are no hidden
conversion factors anywhere in the code: ``speed * time == work`` and
``work / speed == time`` always hold.

This module provides a handful of named helpers so that call sites read
naturally and conversions are greppable.
"""

from __future__ import annotations

#: Tolerance used for floating-point resource comparisons throughout the
#: library.  Resource quantities are physical (MHz, MB, seconds), so an
#: absolute epsilon is appropriate.
EPSILON = 1e-6

#: One gigahertz expressed in the library's base CPU unit (MHz).
GHZ = 1000.0

#: One gigabyte expressed in the library's base memory unit (MB).
GB = 1024.0

#: One hour in seconds.
HOUR = 3600.0

#: One minute in seconds.
MINUTE = 60.0


def mhz(value: float) -> float:
    """Identity helper marking a literal as a CPU speed in MHz."""
    return float(value)


def mcycles(value: float) -> float:
    """Identity helper marking a literal as an amount of work in Mcycles."""
    return float(value)


def megabytes(value: float) -> float:
    """Identity helper marking a literal as a memory size in MB."""
    return float(value)


def seconds(value: float) -> float:
    """Identity helper marking a literal as a duration in seconds."""
    return float(value)


def work_done(speed_mhz: float, duration_s: float) -> float:
    """Work (Mcycles) accomplished running at ``speed_mhz`` for ``duration_s``."""
    return speed_mhz * duration_s


def time_to_complete(work_mcycles: float, speed_mhz: float) -> float:
    """Seconds needed to complete ``work_mcycles`` at ``speed_mhz``.

    Returns ``float('inf')`` for a non-positive speed: a job that is not
    allocated CPU never finishes, which is exactly how callers use this.
    """
    if speed_mhz <= 0.0:
        return float("inf")
    return work_mcycles / speed_mhz


def approx_equal(a: float, b: float, tolerance: float = EPSILON) -> bool:
    """Absolute-epsilon float comparison for resource quantities."""
    return abs(a - b) <= tolerance


def approx_leq(a: float, b: float, tolerance: float = EPSILON) -> bool:
    """``a <= b`` with an absolute tolerance for resource quantities."""
    return a <= b + tolerance


def approx_geq(a: float, b: float, tolerance: float = EPSILON) -> bool:
    """``a >= b`` with an absolute tolerance for resource quantities."""
    return a + tolerance >= b


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into ``[low, high]``.

    Raises :class:`ValueError` if ``low > high`` — a sign of a logic error
    at the call site that should never be silently absorbed.
    """
    if low > high:
        raise ValueError(f"clamp range is empty: low={low!r} > high={high!r}")
    if value < low:
        return low
    if value > high:
        return high
    return value
