#!/usr/bin/env python
"""Quickstart: place a small batch workload with the APC.

Builds a 4-node cluster, submits 24 identical jobs (a scaled-down
version of the paper's Experiment One), lets the RPF-driven placement
controller manage them on a 600 s control cycle, and prints the outcome:
deadline satisfaction, placement changes (expect zero for identical
jobs), and the Figure 2-style series of average hypothetical relative
performance over time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import (
    APCConfig,
    APCPolicy,
    ApplicationPlacementController,
    BatchWorkloadModel,
    Cluster,
    JobQueue,
    MixedWorkloadSimulator,
    SimulationConfig,
    experiment_one_jobs,
)


def main() -> None:
    # A cluster of 4 machines: four 3.9 GHz processors and 16 GB each
    # (the paper's Experiment One node type).
    cluster = Cluster.homogeneous(
        4,
        cpu_capacity=4 * 3900,
        memory_capacity=16 * 1024,
        cpu_per_processor=3900,
    )

    # 24 identical jobs: 68.6 GCycles each (17,600 s at full speed),
    # 4,320 MB of memory, completion goal 2.7x the best execution time.
    jobs = experiment_one_jobs(count=24, mean_interarrival=1800.0, seed=11)

    # Wire up the management system: job queue -> batch workload model ->
    # placement controller -> simulated cluster.
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    controller = ApplicationPlacementController(
        cluster, APCConfig(cycle_length=600.0)
    )
    policy = APCPolicy(controller, [batch])
    sim = MixedWorkloadSimulator(
        cluster,
        policy,
        queue,
        arrivals=jobs,
        batch_model=batch,
        config=SimulationConfig(cycle_length=600.0),
    )

    metrics = sim.run()

    print(f"jobs completed:          {len(metrics.completions)}")
    print(f"deadline satisfaction:   {100 * metrics.deadline_satisfaction_rate():.1f}%")
    print(f"placement changes:       {metrics.total_placement_changes()} "
          "(identical jobs: the controller never reconfigures)")
    print(f"mean decision time:      {metrics.mean_decision_seconds() * 1e3:.1f} ms/cycle")
    print()
    print("average hypothetical relative performance over time:")
    series = metrics.hypothetical_utility_series()
    for t, u in series[:: max(1, len(series) // 12)]:
        bar = "#" * max(0, int(40 * max(u, 0.0))) if u == u else ""
        label = f"{u:6.3f}" if u == u else "  (no jobs)"
        print(f"  t={t:8.0f}s  {label}  {bar}")


if __name__ == "__main__":
    main()
