#!/usr/bin/env python
"""Node failure and recovery under the placement controller.

Injects an abrupt node crash into a running batch workload and shows the
controller absorbing it: jobs on the failed node restart, the survivors
are repacked onto the remaining machines, and when the node returns the
controller spreads out again.  A second run uses a graceful drain
(progress preserved) for comparison, and the structured simulation trace
reconstructs one affected job's full story.

Run with::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import (
    APCConfig,
    APCPolicy,
    ApplicationPlacementController,
    BatchWorkloadModel,
    Cluster,
    JobQueue,
    MixedWorkloadSimulator,
    SimulationConfig,
)
from repro.sim import NodeFailure, SimulationTrace
from repro.virt.costs import FREE_COST_MODEL
from repro.workloads.generators import JobClass, MixedJobGenerator


def make_jobs():
    """Six identical 1,200 s jobs submitted together: they fill all six
    slots (two 700 MB VMs per 1,500 MB node), so the node1 crash at
    t = 400 s is guaranteed to hit two running jobs."""
    from repro.batch.job import Job

    profile_class = JobClass("batch", 1_200.0, 1_000.0, 700.0)
    return [
        Job.with_goal_factor(
            job_id=f"job{i}",
            profile=profile_class.profile(),
            submit_time=0.0,
            goal_factor=6.0,
        )
        for i in range(6)
    ]


def run(lose_progress: bool):
    cluster = Cluster.homogeneous(3, cpu_capacity=2_000.0, memory_capacity=1_500.0)
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    policy = APCPolicy(
        ApplicationPlacementController(cluster, APCConfig(cycle_length=60.0)),
        [batch],
    )
    trace = SimulationTrace()
    sim = MixedWorkloadSimulator(
        cluster,
        policy,
        queue,
        arrivals=make_jobs(),
        batch_model=batch,
        config=SimulationConfig(
            cycle_length=60.0,
            cost_model=FREE_COST_MODEL,
            failures=[
                NodeFailure(
                    "node1",
                    fail_time=400.0,
                    duration=600.0,
                    lose_progress=lose_progress,
                )
            ],
        ),
        trace=trace,
    )
    metrics = sim.run()
    return metrics, trace


def main() -> None:
    for lose_progress in (True, False):
        mode = "abrupt crash (progress lost)" if lose_progress else "graceful drain"
        metrics, trace = run(lose_progress)
        print(f"\n=== node1 down 400s-1000s: {mode} ===")
        print(f"jobs completed: {len(metrics.completions)}/6, "
              f"on time: {100 * metrics.deadline_satisfaction_rate():.0f}%")
        mean_duration = sum(
            c.completion_time - c.submit_time for c in metrics.completions
        ) / len(metrics.completions)
        print(f"mean time in system: {mean_duration:,.0f}s")
        print(f"placement changes: {metrics.total_placement_changes()}")

        # Reconstruct the story of a job that was on the failed node.
        from repro.sim import TraceEventKind

        failure_events = trace.events(
            kinds=[TraceEventKind.SUSPEND],
            predicate=lambda e: e.detail.get("event") == "node-failure",
        )
        affected = {
            e.subject
            for e in trace.events(kinds=[TraceEventKind.BOOT])
            if e.detail.get("node") == "node1" and e.time < 400.0
        }
        if affected:
            victim = sorted(affected)[0]
            print(f"timeline of {victim} (was on node1):")
            for event in trace.history_of(victim):
                print(f"  {event.render()}")
        del failure_events


if __name__ == "__main__":
    main()
