#!/usr/bin/env python
"""Node failure and recovery under the placement controller.

Injects an abrupt node crash into a running batch workload and shows the
controller absorbing it: jobs on the failed node restart, the survivors
are repacked onto the remaining machines, and when the node returns the
controller spreads out again.  A second run uses a graceful drain
(progress preserved) for comparison, and the structured simulation trace
reconstructs one affected job's full story.

A final pair of scenarios turns on the fallible actuator
(:class:`~repro.virt.faults.ActionFaultModel`): a live migration that
fails transiently and succeeds on retry, and one that fails every
attempt — the reconciler abandons it, the job finishes on its source
node, and the next control cycle simply re-plans from the actual
placement.

Run with::

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.api import (
    APCConfig,
    Job,
    APCPolicy,
    ActionFaultModel,
    ApplicationPlacementController,
    BatchWorkloadModel,
    Cluster,
    FREE_COST_MODEL,
    JobClass,
    JobQueue,
    MixedJobGenerator,
    MixedWorkloadSimulator,
    NodeFailure,
    PlacementState,
    RetryPolicy,
    ScriptedPolicy,
    SimulationConfig,
    SimulationTrace,
    TraceEventKind,
)


def make_jobs():
    """Six identical 1,200 s jobs submitted together: they fill all six
    slots (two 700 MB VMs per 1,500 MB node), so the node1 crash at
    t = 400 s is guaranteed to hit two running jobs."""
    profile_class = JobClass("batch", 1_200.0, 1_000.0, 700.0)
    return [
        Job.with_goal_factor(
            job_id=f"job{i}",
            profile=profile_class.profile(),
            submit_time=0.0,
            goal_factor=6.0,
        )
        for i in range(6)
    ]


def run(lose_progress: bool):
    cluster = Cluster.homogeneous(3, cpu_capacity=2_000.0, memory_capacity=1_500.0)
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    policy = APCPolicy(
        ApplicationPlacementController(cluster, APCConfig(cycle_length=60.0)),
        [batch],
    )
    trace = SimulationTrace()
    sim = MixedWorkloadSimulator(
        cluster,
        policy,
        queue,
        arrivals=make_jobs(),
        batch_model=batch,
        config=SimulationConfig(
            cycle_length=60.0,
            cost_model=FREE_COST_MODEL,
            failures=[
                NodeFailure(
                    "node1",
                    fail_time=400.0,
                    duration=600.0,
                    lose_progress=lose_progress,
                )
            ],
        ),
        trace=trace,
    )
    metrics = sim.run()
    return metrics, trace


def pin(job_id: str, node: str):
    """A scripted-policy step placing one job alone on one node."""

    def step(current: PlacementState, now: float) -> PlacementState:
        state = PlacementState(current.cluster)
        state.place(job_id, node, 750.0)
        state.set_cpu(job_id, node, 1_000.0)
        return state

    return step


def run_flaky_migration(failure_probability: float, seed: int):
    """Boot one job on node0, then ask for a node0 -> node1 migration at
    the t = 600 s cycle under an unreliable migration actuator."""
    cluster = Cluster.homogeneous(2, cpu_capacity=1_000.0, memory_capacity=2_000.0)
    job = Job.with_goal_factor(
        job_id="job0",
        profile=JobClass("batch", 2_000.0, 1_000.0, 750.0).profile(),
        submit_time=0.0,
        goal_factor=10.0,
    )
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    # Two scripted decisions (boot on node0, migrate to node1); every
    # later cycle re-plans from whatever placement actually exists.
    policy = ScriptedPolicy([pin("job0", "node0"), pin("job0", "node1")])
    trace = SimulationTrace()
    sim = MixedWorkloadSimulator(
        cluster,
        policy,
        queue,
        arrivals=[job],
        batch_model=batch,
        config=SimulationConfig(
            cycle_length=600.0,
            fault_model=ActionFaultModel.flaky_migrations(
                failure_probability, seed=seed
            ),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=10.0),
        ),
        trace=trace,
    )
    metrics = sim.run()
    return job, metrics, trace


FAULT_EVENT_KINDS = (
    TraceEventKind.ACTION_FAILED,
    TraceEventKind.ACTION_RETRIED,
    TraceEventKind.ACTION_STALLED,
    TraceEventKind.ACTION_ABANDONED,
    TraceEventKind.MIGRATE,
)


def show_flaky_run(title: str, failure_probability: float, seed: int) -> None:
    job, metrics, trace = run_flaky_migration(failure_probability, seed)
    faults = metrics.faults
    print(f"\n=== flaky migration: {title} ===")
    print(f"migrate attempts: {faults.attempts.get('migrate', 0)}, "
          f"failures: {faults.failures.get('migrate', 0)}, "
          f"retries: {faults.retries.get('migrate', 0)}, "
          f"abandoned: {faults.abandoned.get('migrate', 0)}")
    record = metrics.completions[0]
    print(f"job completed at {record.completion_time:,.1f}s on {job.node} "
          f"(migrations committed: {record.migration_count})")
    mean_lag = faults.mean_time_to_reconcile()
    if mean_lag == mean_lag:  # not NaN
        print(f"time from first attempt to success: {mean_lag:,.1f}s")
    for event in trace.events(kinds=FAULT_EVENT_KINDS):
        print(f"  {event.render()}")


def main() -> None:
    for lose_progress in (True, False):
        mode = "abrupt crash (progress lost)" if lose_progress else "graceful drain"
        metrics, trace = run(lose_progress)
        print(f"\n=== node1 down 400s-1000s: {mode} ===")
        print(f"jobs completed: {len(metrics.completions)}/6, "
              f"on time: {100 * metrics.deadline_satisfaction_rate():.0f}%")
        mean_duration = sum(
            c.completion_time - c.submit_time for c in metrics.completions
        ) / len(metrics.completions)
        print(f"mean time in system: {mean_duration:,.0f}s")
        print(f"placement changes: {metrics.total_placement_changes()}")

        # Reconstruct the story of a job that was on the failed node.
        failure_events = trace.events(
            kinds=[TraceEventKind.SUSPEND],
            predicate=lambda e: e.detail.get("event") == "node-failure",
        )
        affected = {
            e.subject
            for e in trace.events(kinds=[TraceEventKind.BOOT])
            if e.detail.get("node") == "node1" and e.time < 400.0
        }
        if affected:
            victim = sorted(affected)[0]
            print(f"timeline of {victim} (was on node1):")
            for event in trace.history_of(victim):
                print(f"  {event.render()}")
        del failure_events

    # Fallible actuator: a transient migration failure is retried with
    # backoff and lands on the second attempt...
    show_flaky_run("transient failure, retry succeeds",
                   failure_probability=0.7, seed=1)
    # ...while a hard failure exhausts the attempt budget.  The action
    # is abandoned, the job finishes on its source node, and the next
    # control cycle re-plans from the placement that actually exists —
    # no crash, no capacity leak.
    show_flaky_run("hard failure, abandoned and absorbed",
                   failure_probability=1.0, seed=1)


if __name__ == "__main__":
    main()
