#!/usr/bin/env python
"""Compare scheduling policies on a mixed batch workload (Experiment
Two in miniature).

Submits the paper's §5.2 job mix (three job profiles, three goal-factor
tiers) at a configurable pressure and runs it under FCFS, EDF and the
paper's APC on the same cluster, printing the Figure 3/4/5 quantities:
deadline satisfaction, placement changes, and distance-to-deadline
statistics per goal tier.

Run with::

    python examples/scheduler_comparison.py [paper-interarrival-seconds]

e.g. ``python examples/scheduler_comparison.py 100`` for the loaded
regime.  The default (200 s) reproduces the moderate-load column.
"""

from __future__ import annotations

import sys

from repro.api import (
    SCALES,
    format_table,
    run_single,
)


def main() -> None:
    paper_interarrival = float(sys.argv[1]) if len(sys.argv) > 1 else 200.0
    scale = SCALES["small"]
    print(
        f"cluster: {scale.nodes} nodes; jobs: {scale.job_count}; "
        f"inter-arrival: {paper_interarrival:.0f}s (paper scale) -> "
        f"{scale.interarrival(paper_interarrival):.0f}s here"
    )

    cells = {}
    for policy in ("FCFS", "EDF", "APC"):
        cells[policy] = run_single(policy, paper_interarrival, scale, seed=7)

    print()
    print(format_table(
        ["policy", "deadline satisfaction", "placement changes"],
        [
            [
                name,
                f"{100 * cell.deadline_satisfaction:.1f}%",
                cell.placement_changes,
            ]
            for name, cell in cells.items()
        ],
    ))

    print("\ndistance to deadline at completion (s), per goal tier:")
    rows = []
    for name, cell in cells.items():
        for factor in sorted(cell.distances):
            d = cell.distances[factor]
            rows.append(
                [
                    name,
                    f"{factor:.1f}x",
                    len(d),
                    f"{min(d):,.0f}",
                    f"{sum(d) / len(d):,.0f}",
                    f"{max(d):,.0f}",
                ]
            )
    print(format_table(["policy", "goal", "n", "min", "mean", "max"], rows))

    print(
        "\nreading guide: positive distances beat the goal; FCFS's minima dive\n"
        "under load (head-of-line blocking), EDF reconfigures the most, and\n"
        "APC holds a comparable on-time rate with fewer changes and tighter\n"
        "clustering (the paper's fairness claim)."
    )


if __name__ == "__main__":
    main()
