#!/usr/bin/env python
"""Tour of the transactional substrate: queuing model, RPF, router and
work profiler.

A standalone walk through the §3.1/§3.3 components, without the
simulator:

1. build a queuing performance model ``t(ω)`` and its RPF ``u(ω)``;
2. ask the two questions the placement algorithm asks of an RPF;
3. route a request stream across instances with overload protection;
4. estimate per-request CPU demand from noisy monitoring samples with
   the work profiler's regression — and close the loop by rebuilding
   the model from the estimate.

Run with::

    python examples/txn_substrate_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.api import (
    ProcessorSharingModel,
    RequestRouter,
    TransactionalRPF,
    UtilizationSample,
    WorkProfiler,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The queuing performance model (§3.3).
    # ------------------------------------------------------------------
    true_demand = 39.0          # Mcycles per request (ground truth)
    arrival_rate = 120.0        # req/s
    sigma = 3900.0              # one processor's speed
    model = ProcessorSharingModel(arrival_rate, true_demand, sigma)
    print("response time t(ω):")
    for cpu in (5_000, 6_000, 8_000, 12_000, 30_000):
        print(f"  ω={cpu:>7,} MHz -> t={model.response_time(cpu) * 1e3:7.2f} ms")
    print(f"  offered load λ·d = {model.offered_load:,.0f} MHz; "
          f"floor t_min = {model.min_response_time * 1e3:.1f} ms; "
          f"saturation at {model.saturation_cpu:,.0f} MHz")

    # ------------------------------------------------------------------
    # 2. The RPF and the placement algorithm's two questions (§3.2).
    # ------------------------------------------------------------------
    rpf = TransactionalRPF(model, response_time_goal=0.05)
    print("\nRPF u(ω) = (τ − t(ω))/τ with τ = 50 ms:")
    some_allocation = 8_000.0
    print(f"  Q1: relative performance at ω={some_allocation:,.0f} MHz? "
          f"u = {rpf.utility(some_allocation):.3f}")
    target = 0.4
    print(f"  Q2: CPU needed for u={target}? "
          f"ω = {rpf.required_cpu(target):,.0f} MHz")
    print(f"  plateau: u_max = {rpf.max_utility:.3f} "
          f"(the goal cannot be beaten by more than the floor allows)")

    # ------------------------------------------------------------------
    # 3. The request router with overload protection (§3.1).
    # ------------------------------------------------------------------
    router = RequestRouter(max_utilization=0.9)
    instance_speeds = {"node0": 4_000.0, "node1": 2_000.0}
    decision = router.route(arrival_rate, true_demand, instance_speeds, sigma)
    print("\nrouter split (proportional to instance CPU, 90% admission cap):")
    for node, admitted in sorted(decision.admitted.items()):
        print(f"  {node}: {admitted:6.1f} req/s")
    print(f"  shed: {decision.shed_rate:.1f} req/s; "
          f"mean response time {decision.mean_response_time * 1e3:.1f} ms")

    overloaded = router.route(400.0, true_demand, instance_speeds, sigma)
    print(f"  at 400 req/s the cap sheds {overloaded.shed_rate:.1f} req/s "
          "(overload protection)")

    # ------------------------------------------------------------------
    # 4. The work profiler's regression (§3.1).
    # ------------------------------------------------------------------
    rng = np.random.default_rng(3)
    profiler = WorkProfiler(window=128)
    for _ in range(96):
        throughput = float(rng.uniform(20, 140))
        used = throughput * true_demand + float(rng.normal(0.0, 60.0))
        profiler.observe(
            UtilizationSample({"web": throughput}, used_cpu_mhz=max(0.0, used))
        )
    estimate = profiler.estimate("web")
    print(f"\nwork profiler: true demand {true_demand} Mcycles/request, "
          f"estimated {estimate:.2f} from {profiler.sample_count} noisy samples")

    rebuilt = ProcessorSharingModel(arrival_rate, estimate, sigma)
    print(f"rebuilt model saturation: {rebuilt.saturation_cpu:,.0f} MHz "
          f"(truth: {model.saturation_cpu:,.0f} MHz)")


if __name__ == "__main__":
    main()
