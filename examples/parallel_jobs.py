#!/usr/bin/env python
"""Moldable parallel jobs — the paper's stated future work, implemented.

§6: "We expect to extend this technique in the future to offer explicit
support for parallel jobs."  This example runs a mix of sequential
analytics jobs and moldable MPI-style jobs (each may spread over up to
``parallelism`` instances on different nodes, every instance bounded by
the stage's per-instance speed) under the placement controller, and
shows:

* a parallel job spreading across nodes and finishing ``parallelism``
  times faster than its sequential twin;
* the controller *molding* parallelism under contention: when the
  cluster is busy, a moldable job runs on fewer instances rather than
  waiting for all of them.

Run with::

    python examples/parallel_jobs.py
"""

from __future__ import annotations

from repro.api import (
    APCConfig,
    APCPolicy,
    ApplicationPlacementController,
    BatchWorkloadModel,
    Cluster,
    HOUR,
    Job,
    JobProfile,
    JobQueue,
    MixedWorkloadSimulator,
    SimulationConfig,
)

NODE_SPEED = 3900.0


def job_of(job_id: str, hours_of_work: float, parallelism: int,
           submit: float, goal_factor: float = 2.5) -> Job:
    """``hours_of_work`` is total single-instance CPU time."""
    profile = JobProfile.single_stage(
        work_mcycles=NODE_SPEED * hours_of_work * HOUR,
        max_speed_mhz=NODE_SPEED,
        memory_mb=4000.0,
    )
    return Job.with_goal_factor(
        job_id=job_id,
        profile=profile,
        submit_time=submit,
        goal_factor=goal_factor,
        parallelism=parallelism,
    )


def main() -> None:
    cluster = Cluster.homogeneous(
        6, cpu_capacity=4 * NODE_SPEED, memory_capacity=16 * 1024,
        cpu_per_processor=NODE_SPEED,
    )
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    controller = ApplicationPlacementController(
        cluster, APCConfig(cycle_length=600.0)
    )
    policy = APCPolicy(controller, [batch])

    jobs = [
        # Twins: same 4 h of total work, sequential vs 4-way parallel.
        job_of("sequential-twin", hours_of_work=4.0, parallelism=1, submit=0.0),
        job_of("parallel-twin", hours_of_work=4.0, parallelism=4, submit=0.0),
        # A wide moldable job arriving into a busier cluster.
        job_of("wide-mpi", hours_of_work=8.0, parallelism=8, submit=1800.0),
        # Background sequential work.
        *[
            job_of(f"bg-{i}", hours_of_work=2.0, parallelism=1,
                   submit=600.0 * i, goal_factor=4.0)
            for i in range(6)
        ],
    ]
    jobs.sort(key=lambda j: j.submit_time)

    sim = MixedWorkloadSimulator(
        cluster, policy, queue, arrivals=jobs, batch_model=batch,
        config=SimulationConfig(cycle_length=600.0),
    )
    metrics = sim.run()

    print(f"{'job':16s} {'parallelism':>11s} {'submit':>8s} {'done':>9s} "
          f"{'duration':>9s} {'goal met':>8s}")
    for c in sorted(metrics.completions, key=lambda c: c.job_id):
        parallelism = {
            "sequential-twin": 1, "parallel-twin": 4, "wide-mpi": 8,
        }.get(c.job_id, 1)
        print(
            f"{c.job_id:16s} {parallelism:11d} {c.submit_time:8.0f} "
            f"{c.completion_time:9.0f} "
            f"{c.completion_time - c.submit_time:9.0f} "
            f"{str(c.met_deadline):>8s}"
        )

    twins = {c.job_id: c for c in metrics.completions}
    seq = twins["sequential-twin"]
    par = twins["parallel-twin"]
    speedup = (seq.completion_time - seq.submit_time) / (
        par.completion_time - par.submit_time
    )
    print(f"\nparallel twin speedup over sequential twin: {speedup:.1f}x")


if __name__ == "__main__":
    main()
