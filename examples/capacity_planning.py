#!/usr/bin/env python
"""Capacity planning with the analysis tools.

Before deploying the paper's controller, an operator wants to know how
much hardware a workload mix needs.  This example:

1. generates a week's worth of nightly analytics jobs and profiles the
   stream analytically (offered load, slot bound, ideal backlog);
2. binary-searches the minimum cluster size that meets a 95% on-time
   target under the APC, and compares with FCFS — quantifying how much
   hardware the smarter controller saves;
3. sizes the transactional side with the inverse RPF.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.api import (
    Cluster,
    ConstantTrace,
    HOUR,
    JobClass,
    MixedJobGenerator,
    NodeSpec,
    TransactionalApp,
    minimum_nodes_for_batch,
    profile_workload,
    transactional_capacity_required,
)

NODE = NodeSpec(
    cpu_capacity=4 * 3900.0, memory_capacity=16 * 1024.0, cpu_per_processor=3900.0
)


def nightly_analytics(nights: int = 7, jobs_per_night: int = 18, seed: int = 4):
    """Bursts of mixed analytics jobs, one burst per night."""
    generator = MixedJobGenerator(
        classes=[
            (JobClass("report", 1_800.0, 3_900.0, 4_096.0), 0.5),
            (JobClass("model", 7_200.0, 3_900.0, 6_144.0), 0.3),
            (JobClass("backtest", 14_400.0, 1_950.0, 4_096.0), 0.2),
        ],
        goal_factors=[(1.5, 0.2), (2.5, 0.5), (4.0, 0.3)],
        seed=seed,
        id_prefix="an",
    )
    jobs = []
    for night in range(nights):
        jobs.extend(
            generator.generate(
                jobs_per_night, mean_interarrival=300.0, start=night * 24 * HOUR
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


def main() -> None:
    jobs = nightly_analytics()
    probe_cluster = Cluster.homogeneous(
        16, cpu_capacity=NODE.cpu_capacity,
        memory_capacity=NODE.memory_capacity,
        cpu_per_processor=NODE.cpu_per_processor,
    )
    profile = profile_workload(jobs, probe_cluster)
    print(f"workload: {profile.job_count} jobs, "
          f"{profile.total_work_mcycles / 1e6:,.1f} TCycles total")
    print(f"mean offered load: {profile.mean_offered_mhz:,.0f} MHz "
          f"({profile.utilization:.0%} of a 16-node cluster's usable capacity)")
    print(f"peak ideal backlog: {profile.peak_backlog_mcycles / 1e6:,.1f} TCycles")

    print("\nsizing the batch side (95% on-time target):")
    for policy in ("APC", "FCFS"):
        plan = minimum_nodes_for_batch(
            jobs, NODE, target_satisfaction=0.95, max_nodes=16, policy=policy
        )
        print(f"  {policy:4s}: {plan.nodes} nodes "
              f"(measured {plan.deadline_satisfaction:.1%}, "
              f"{plan.evaluations} probe simulations)")

    print("\nsizing the transactional side:")
    frontend = TransactionalApp(
        app_id="frontend",
        memory_mb=1024.0,
        demand_mcycles=390.0,
        response_time_goal=0.25,
        trace=ConstantTrace(90.0),
        single_thread_speed_mhz=3900.0,
    )
    for target in (0.0, 0.3, 0.5):
        needed = transactional_capacity_required(frontend, target)
        print(f"  relative performance {target:+.1f} needs "
              f"{needed:,.0f} MHz ({needed / NODE.cpu_capacity:.1f} nodes)")


if __name__ == "__main__":
    main()
