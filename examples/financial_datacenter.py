#!/usr/bin/env python
"""Mixed workloads in a financial datacenter (the paper's motivating
scenario).

The introduction motivates the system with financial institutions where
"transactional web workloads are used to trade stocks and query indices,
while computationally intensive non-interactive workloads are used to
analyse portfolios or model stock performance".

This example models exactly that:

* a **trading front-end** — a transactional application whose intensity
  steps up at market open (110 req/s, ~42,900 MHz of offered load) and
  falls after close (a piecewise trace);
* **portfolio-analysis jobs** — submitted in a burst after market close
  with a completion goal before the next open;
* **risk-model calibration jobs** — long, wide jobs submitted overnight.

One cluster serves all three, managed by the placement controller; the
example prints how CPU shifts from the front-end to the analytics as the
market closes and back before it opens — dynamic resource sharing in
action (compare the static-partition alternative it also runs).

Run with::

    python examples/financial_datacenter.py
"""

from __future__ import annotations

from repro.api import (
    APCConfig,
    APCPolicy,
    ApplicationPlacementController,
    BatchWorkloadModel,
    Cluster,
    HOUR,
    Job,
    JobProfile,
    JobQueue,
    MixedWorkloadSimulator,
    PartitionedPolicy,
    PiecewiseTrace,
    SimulationConfig,
    TransactionalApp,
    TransactionalWorkloadModel,
)

MARKET_OPEN = 8 * HOUR
MARKET_CLOSE = 16 * HOUR
DAY = 24 * HOUR


def make_trading_frontend() -> TransactionalApp:
    """The trading application: 110 req/s in market hours, 30 off-hours.

    Each request costs ~390 Mcycles (0.1 s on one 3.9 GHz processor);
    the response-time goal is 300 ms.
    """
    trace = PiecewiseTrace(
        [
            (0.0, 30.0),
            (MARKET_OPEN, 110.0),
            (MARKET_CLOSE, 30.0),
        ]
    )
    return TransactionalApp(
        app_id="trading-frontend",
        memory_mb=1024.0,
        demand_mcycles=390.0,
        response_time_goal=0.3,
        trace=trace,
        single_thread_speed_mhz=3900.0,
        model_type="erlang",
    )


def make_analytics_jobs() -> list:
    """Portfolio analysis after close, risk calibration overnight."""
    jobs = []
    # 12 portfolio-analysis jobs just after market close; each needs
    # 2 h at full speed and must finish within 6 h of submission.
    portfolio = JobProfile.single_stage(
        work_mcycles=2 * HOUR * 3900.0, max_speed_mhz=3900.0, memory_mb=4096.0
    )
    for i in range(12):
        jobs.append(
            Job.with_goal_factor(
                job_id=f"portfolio-{i:02d}",
                profile=portfolio,
                submit_time=MARKET_CLOSE + 300.0 * i,
                goal_factor=3.0,
            )
        )
    # 4 risk-model calibrations overnight: 4 h of work each, due before
    # the next market open (goal factor 2).
    risk = JobProfile.single_stage(
        work_mcycles=4 * HOUR * 7800.0, max_speed_mhz=7800.0, memory_mb=8192.0
    )
    for i in range(4):
        jobs.append(
            Job.with_goal_factor(
                job_id=f"risk-calibration-{i}",
                profile=risk,
                submit_time=MARKET_CLOSE + 2 * HOUR + 600.0 * i,
                goal_factor=2.0,
            )
        )
    return sorted(jobs, key=lambda j: j.submit_time)


def run(dynamic: bool) -> tuple:
    cluster = Cluster.homogeneous(
        6, cpu_capacity=4 * 3900, memory_capacity=16 * 1024,
        cpu_per_processor=3900,
    )
    frontend = make_trading_frontend()
    queue = JobQueue()
    batch = BatchWorkloadModel(queue)
    if dynamic:
        controller = ApplicationPlacementController(
            cluster, APCConfig(cycle_length=900.0)
        )
        policy = APCPolicy(
            controller, [TransactionalWorkloadModel([frontend]), batch]
        )
        label = "dynamic sharing (APC)"
    else:
        # Static split: 3 nodes for trading, 3 for analytics (FCFS).
        policy = PartitionedPolicy(
            cluster, cluster.node_names[:3], frontend, queue
        )
        label = "static partition (3 TX / 3 batch, FCFS)"
    sim = MixedWorkloadSimulator(
        cluster,
        policy,
        queue,
        arrivals=make_analytics_jobs(),
        txn_apps=[frontend],
        batch_model=batch,
        config=SimulationConfig(cycle_length=900.0, max_time=DAY + 8 * HOUR),
    )
    return label, sim.run()


def main() -> None:
    for dynamic in (True, False):
        label, metrics = run(dynamic)
        print(f"\n=== {label} ===")
        met = [c for c in metrics.completions if c.met_deadline]
        print(f"analytics jobs finished: {len(metrics.completions)}/16, "
              f"on time: {len(met)}")
        worst_txn = min(
            (u for _, u in metrics.txn_utility_series("trading-frontend")),
            default=float("nan"),
        )
        print(f"worst trading-frontend relative performance: {worst_txn:.3f}")
        print("hour   TX MHz    batch MHz   TX rel.perf")
        for s in metrics.cycles[:: max(1, len(metrics.cycles) // 14)]:
            txu = s.txn_utilities.get("trading-frontend", float("nan"))
            print(
                f"{s.time / HOUR:5.1f}  {s.txn_allocation_mhz:8.0f}  "
                f"{s.batch_allocation_mhz:9.0f}  {txu:8.3f}"
            )


if __name__ == "__main__":
    main()
