"""Setup shim.

Metadata lives in ``pyproject.toml``.  This file exists so the package
can be installed in editable mode (``python setup.py develop`` /
``pip install -e .``) on environments whose setuptools predates full
PEP 660 support without the ``wheel`` package available.
"""

from setuptools import setup

setup()
