"""§5.1's runtime observation: the per-cycle placement computation.

The paper reports ~1.5 s per cycle on a 3.2 GHz Xeon for the 25-node /
800-job system "in normal conditions", with "internal shortcuts" making
underloaded cycles much cheaper.  This is the one true microbenchmark in
the suite: it times a single APC decision on (a) an underloaded snapshot
(shortcut path) and (b) a saturated snapshot with a deep queue (full
search path).
"""

from __future__ import annotations

import pytest

from repro.batch.model import BatchWorkloadModel
from repro.batch.queue import JobQueue
from repro.core.apc import APCConfig, ApplicationPlacementController
from repro.core.placement import PlacementState
from repro.workloads.generators import experiment_one_jobs


def snapshot(scale, job_count):
    """A mid-experiment state: jobs submitted at t=0, controller decides."""
    cluster = scale.cluster()
    queue = JobQueue()
    for job in experiment_one_jobs(count=job_count, mean_interarrival=1.0, seed=5):
        job.submit_time = 0.0
        job.desired_start = 0.0
        queue.submit(job)
    batch = BatchWorkloadModel(queue, queue_window=scale.queue_window)
    controller = ApplicationPlacementController(
        cluster, APCConfig(cycle_length=600.0)
    )
    return controller, batch, cluster


@pytest.mark.benchmark(group="decision-time")
def test_decision_time_underloaded(benchmark, scale):
    # Fewer jobs than slots: the shortcut path.
    controller, batch, cluster = snapshot(scale, job_count=2 * scale.nodes)

    def decide():
        return controller.place([batch], PlacementState(cluster), now=0.0)

    result = benchmark(decide)
    assert result.utilities
    benchmark.extra_info["evaluations"] = result.evaluations


@pytest.mark.benchmark(group="decision-time")
def test_decision_time_saturated(benchmark, scale):
    # Twice as many jobs as slots: greedy + full search path.
    slots = 3 * scale.nodes
    controller, batch, cluster = snapshot(scale, job_count=2 * slots)

    def decide():
        return controller.place([batch], PlacementState(cluster), now=0.0)

    result = benchmark(decide)
    assert result.utilities
    benchmark.extra_info["evaluations"] = result.evaluations
