"""Table 2 + Figure 2: Experiment One — prediction accuracy (§5.1).

Regenerates the two series of Figure 2 (average hypothetical relative
performance over time; relative performance at completion time) and
checks the paper's observations:

* the plateau sits at the maximum achievable relative performance 0.63;
* the completion-time series lags the hypothetical series by roughly one
  job duration;
* the controller performs zero placement changes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.experiment1 import (
    MAX_ACHIEVABLE_RELATIVE_PERFORMANCE,
    run_experiment_one,
)


@pytest.mark.benchmark(group="fig2")
def test_fig2_prediction_accuracy(benchmark, scale):
    result = run_once(benchmark, run_experiment_one, scale=scale)

    print()
    print("time(s)   avg hypothetical RP")
    series = result.hypothetical_series
    step = max(1, len(series) // 20)
    for t, u in series[::step]:
        print(f"{t:9.0f}  {u:8.3f}")
    print(f"completions: {len(result.completion_series)}, "
          f"peak completion RP: {result.peak_completion_utility:.3f}")
    shift = result.series_time_shift()
    if shift is not None:
        print(f"hypothetical->completion series shift: {shift:.0f}s "
              f"(paper: ~18,000s; one job duration = 17,600s)")

    # Paper checks -----------------------------------------------------
    # Plateau at 0.63 (reached when no queuing).
    assert result.peak_hypothetical == pytest.approx(
        MAX_ACHIEVABLE_RELATIVE_PERFORMANCE, abs=0.02
    )
    assert result.peak_completion_utility <= (
        MAX_ACHIEVABLE_RELATIVE_PERFORMANCE + 0.01
    )
    # Zero suspend/resume/migrate actions for identical jobs.
    assert result.placement_changes == 0
    # The completion series lags the hypothetical one.
    if shift is not None:
        assert shift > 0

    benchmark.extra_info["peak_hypothetical"] = round(result.peak_hypothetical, 4)
    benchmark.extra_info["placement_changes"] = result.placement_changes
    benchmark.extra_info["deadline_satisfaction"] = round(
        result.deadline_satisfaction, 4
    )
    benchmark.extra_info["mean_decision_seconds"] = round(
        result.mean_decision_seconds, 4
    )
    if shift is not None:
        benchmark.extra_info["series_shift_seconds"] = round(shift, 0)
