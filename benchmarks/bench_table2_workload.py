"""Table 2: Experiment One's job properties, derived quantities and the
§5.1 arithmetic.

Regenerates the table's derived rows — minimum execution time, work,
relative goal, packing limits (3 jobs per node, 75 concurrent at paper
scale), and the 0.63 maximum achievable relative performance — directly
from the workload generator, and validates the queueing threshold the
paper's arrival rate is chosen to cross.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import (
    PAPER_MEMORY_PER_NODE,
    PAPER_NODES,
    format_table,
)
from repro.workloads.generators import EXPERIMENT_ONE_CLASS, experiment_one_jobs


def build_rows():
    job_class = EXPERIMENT_ONE_CLASS
    jobs = experiment_one_jobs(count=4, seed=0)
    job = jobs[0]
    jobs_per_node = int(PAPER_MEMORY_PER_NODE // job_class.memory_mb)
    concurrent = jobs_per_node * PAPER_NODES
    u_max = job.relative_goal and (
        (job.relative_goal - job.profile.best_execution_time) / job.relative_goal
    )
    rows = [
        ["Maximum speed [MHz]", f"{job_class.max_speed_mhz:.0f}", "3,900 (1 CPU)"],
        ["Memory requirement [MB]", f"{job_class.memory_mb:.0f}", "4,320"],
        ["Work [Mcycles]", f"{job_class.work_mcycles:,.0f}", "68,640,000"],
        ["Minimum execution time [s]", f"{job_class.min_execution_time:,.0f}", "17,600"],
        ["Relative goal factor", f"{job.goal_factor:.1f}", "2.7"],
        ["Relative goal [s]", f"{job.relative_goal:,.0f}", "47,520"],
        ["Jobs per node (memory bound)", jobs_per_node, "3"],
        ["Max concurrent jobs", concurrent, "75"],
        ["Max achievable relative perf", f"{u_max:.4f}", "0.63"],
    ]
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_job_properties(benchmark):
    rows = run_once(benchmark, build_rows)
    print()
    print(format_table(["property", "reproduced", "paper"], rows))

    lookup = {r[0]: r[1] for r in rows}
    assert lookup["Jobs per node (memory bound)"] == 3
    assert lookup["Max concurrent jobs"] == 75
    assert float(lookup["Max achievable relative perf"]) == pytest.approx(
        0.6296, abs=1e-3
    )
    assert lookup["Minimum execution time [s]"] == "17,600"
    benchmark.extra_info["rows"] = rows
