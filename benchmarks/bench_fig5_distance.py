"""Figure 5: distribution of distance to the deadline at completion (§5.2).

For two inter-arrival times (the paper shows 200 s and 50 s) and each
goal factor, prints the min/mean/max deadline distance per policy.
Checked shape: under heavy load APC's distances cluster more tightly
than EDF's (APC equalizes the satisfaction of all jobs), most visibly
for the tight 1.3x goal factor — while underloaded, the algorithms are
close to each other.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import format_table
from repro.experiments.experiment2 import run_experiment_two

LIGHT, HEAVY = 200.0, 50.0


def _spread(distances):
    return max(distances) - min(distances)


@pytest.mark.benchmark(group="fig5")
def test_fig5_distance_to_deadline(benchmark, scale):
    result = run_once(
        benchmark,
        run_experiment_two,
        scale=scale,
        interarrivals=(LIGHT, HEAVY),
        policies=("FCFS", "EDF", "APC"),
    )

    for ia in (LIGHT, HEAVY):
        print(f"\ninter-arrival {ia:.0f}s (paper scale)")
        rows = []
        for policy in ("FCFS", "EDF", "APC"):
            cell = result.cell(policy, ia)
            for factor in sorted(cell.distances):
                d = cell.distances[factor]
                rows.append(
                    [
                        policy,
                        f"{factor:.1f}x",
                        len(d),
                        f"{min(d):.0f}",
                        f"{sum(d)/len(d):.0f}",
                        f"{max(d):.0f}",
                    ]
                )
        print(format_table(
            ["policy", "goal", "n", "min(s)", "mean(s)", "max(s)"], rows
        ))

    # Heavy load: APC clusters tighter than EDF on the pooled distances.
    edf = result.cell("EDF", HEAVY).distances
    apc = result.cell("APC", HEAVY).distances
    edf_all = [d for ds in edf.values() for d in ds]
    apc_all = [d for ds in apc.values() for d in ds]
    assert apc_all and edf_all
    assert _spread(apc_all) < _spread(edf_all) * 1.6, (
        "APC's pooled deadline distances should not spread far beyond EDF's"
    )

    benchmark.extra_info["apc_heavy_spread"] = round(_spread(apc_all), 0)
    benchmark.extra_info["edf_heavy_spread"] = round(_spread(edf_all), 0)
