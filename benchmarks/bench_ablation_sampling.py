"""Ablation A1: sensitivity to the sampling resolution ``R`` (§4.2).

The paper picks a "small constant" number of target relative performance
values and interpolates; this bench quantifies the interpolation error
against the exact equalized-level solve across grid sizes.  Expectation:
the error shrinks monotonically (in the mean) with resolution and is
already modest at small R — which is why the paper's approximation
works.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_sampling_ablation
from repro.experiments.common import format_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_sampling_resolution(benchmark):
    rows = run_once(benchmark, run_sampling_ablation)
    print()
    print(format_table(
        ["R (grid points)", "max |err|", "mean |err|"],
        [
            [r.resolution, f"{r.max_interpolation_error:.4f}",
             f"{r.mean_interpolation_error:.4f}"]
            for r in rows
        ],
    ))
    means = [r.mean_interpolation_error for r in rows]
    assert means == sorted(means, reverse=True), "error should fall with R"
    # Densifying the grid buys accuracy with diminishing returns; the
    # residual error is dominated by deeply-late jobs whose utilities sit
    # between the -inf floor row and the first finite grid level.
    assert means[-1] < means[0]
    assert means[-1] < 0.1
    benchmark.extra_info["mean_errors"] = {
        r.resolution: round(r.mean_interpolation_error, 5) for r in rows
    }
