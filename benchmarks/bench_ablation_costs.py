"""Ablation A3: placement-action costs on/off.

Experiment Two "did not consider the cost of the various types of
placement changes"; this bench reruns its APC configuration with the
paper's measured cost model enabled.  Expectation: the measured costs
(tens of seconds per action on 4,320 MB VMs, against 600 s cycles and
multi-hour jobs) barely move deadline satisfaction — supporting the
paper's claim that ignoring them "does not change the conclusions".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_cost_model_ablation
from repro.experiments.common import format_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_action_costs(benchmark, scale):
    rows = run_once(benchmark, run_cost_model_ablation, scale=scale)
    print()
    print(format_table(
        ["cost model", "deadline satisfaction", "changes", "mean completion (s)"],
        [
            [r.cost_model, f"{100 * r.deadline_satisfaction:.1f}%",
             r.placement_changes, f"{r.mean_completion_time:,.0f}"]
            for r in rows
        ],
    ))
    by_name = {r.cost_model: r for r in rows}
    free, paper = by_name["free"], by_name["paper"]
    assert abs(free.deadline_satisfaction - paper.deadline_satisfaction) < 0.1
    # Costs can only delay completions.
    assert paper.mean_completion_time >= free.mean_completion_time - 1.0
    benchmark.extra_info["free"] = round(free.deadline_satisfaction, 3)
    benchmark.extra_info["paper"] = round(paper.deadline_satisfaction, 3)
