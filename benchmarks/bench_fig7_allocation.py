"""Figure 7: CPU power allocated to each workload over time (§5.3).

Prints the (time, TX MHz, LR MHz) allocation series for the three
configurations.  Checked shape:

* under dynamic sharing the split moves over time — TX gets (nearly)
  everything it can use at the start, cedes CPU to the batch workload as
  the queue builds, and the variation is substantial;
* the static configurations hold (near-)constant splits bounded by their
  partition capacities.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.experiment3 import make_txn_app, run_experiment_three


@pytest.mark.benchmark(group="fig7")
def test_fig7_cpu_allocation(benchmark, scale):
    result = run_once(benchmark, run_experiment_three, scale=scale)
    cluster_capacity = scale.cluster().total_cpu_capacity
    txn_app = make_txn_app(scale)

    for key, cfg in result.configurations.items():
        print(f"\n{cfg.name}")
        print("time(s)    TX MHz    LR MHz")
        series = cfg.allocation_series
        step = max(1, len(series) // 14)
        for t, tx, lr in series[::step]:
            print(f"{t:9.0f}  {tx:8.0f}  {lr:8.0f}")

    apc = result.configurations["APC"].allocation_series
    tx_allocs = [tx for _, tx, _ in apc]
    lr_allocs = [lr for _, _, lr in apc]

    # Dynamic sharing: the transactional allocation varies widely.
    assert max(tx_allocs) - min(tx_allocs) > 0.15 * cluster_capacity
    # The batch workload receives substantial CPU at peak pressure.
    assert max(lr_allocs) > 0.3 * cluster_capacity
    # Node capacities are never violated in aggregate.
    for t, tx, lr in apc:
        assert tx + lr <= cluster_capacity + 1e-6

    # Static partitions: (near-)constant transactional allocation, capped
    # by the partition and the application's saturation point.
    for key in ("TX9", "TX6"):
        series = result.configurations[key].allocation_series
        tx_static = [tx for _, tx, _ in series]
        assert max(tx_static) - min(tx_static) < 0.05 * cluster_capacity
        assert max(tx_static) <= txn_app.rpf_at(0.0).saturation_cpu * 1.3

    benchmark.extra_info["apc_tx_range_mhz"] = (
        round(min(tx_allocs)),
        round(max(tx_allocs)),
    )
    benchmark.extra_info["cluster_capacity_mhz"] = round(cluster_capacity)
