"""Figure 3: percentage of jobs that met their deadline (§5.2).

Sweeps the paper's inter-arrival times for FCFS, EDF and APC and prints
the Figure 3 rows.  Checked shape:

* no significant difference between algorithms when underloaded
  (inter-arrival >= 200 s at paper scale);
* FCFS collapses under load, far below EDF and APC;
* EDF and APC stay comparable (EDF may edge out APC at the heaviest
  load, as in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import format_table
from repro.experiments.experiment2 import run_experiment_two

#: A light/medium/heavy subset keeps the bench affordable; pass
#: REPRO_BENCH_SCALE=paper and edit here for the full eight-point sweep.
SWEEP = (400.0, 200.0, 100.0, 50.0)


@pytest.mark.benchmark(group="fig3")
def test_fig3_deadline_satisfaction(benchmark, scale):
    result = run_once(
        benchmark, run_experiment_two, scale=scale, interarrivals=SWEEP
    )

    print()
    print(format_table(
        ["inter-arrival(s)", "FCFS", "EDF", "APC"], result.satisfaction_table()
    ))

    light = max(SWEEP)
    heavy = min(SWEEP)
    fcfs_light = result.cell("FCFS", light).deadline_satisfaction
    fcfs_heavy = result.cell("FCFS", heavy).deadline_satisfaction
    edf_heavy = result.cell("EDF", heavy).deadline_satisfaction
    apc_heavy = result.cell("APC", heavy).deadline_satisfaction
    apc_light = result.cell("APC", light).deadline_satisfaction
    edf_light = result.cell("EDF", light).deadline_satisfaction

    # Underloaded: everyone close together (paper: "no significant
    # difference ... when inter-arrival times are greater than 100s").
    assert abs(apc_light - edf_light) < 0.15
    # FCFS collapses under load while EDF/APC stay far above it.
    assert fcfs_heavy < fcfs_light
    assert edf_heavy > fcfs_heavy + 0.2
    assert apc_heavy > fcfs_heavy + 0.1
    # EDF and APC comparable at the margin the paper reports (~10%).
    assert apc_heavy > edf_heavy - 0.25

    benchmark.extra_info["rows"] = result.satisfaction_table()
