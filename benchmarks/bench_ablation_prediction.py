"""Ablation A4: exact versus interpolated hypothetical predictions.

The paper uses the equation-(6) interpolation "because solving a system
of linear equations ... is too costly to perform in an on-line placement
algorithm"; this library's default is the exact (vectorized) equalized-
level solve.  This bench runs Experiment Two's APC end to end with both
predictors.  Expectation: deadline satisfaction is close — the
approximation is good enough for placement — while churn may differ
slightly (interpolation noise creates spurious near-ties).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_prediction_method_ablation
from repro.experiments.common import format_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_prediction_method(benchmark, scale):
    rows = run_once(benchmark, run_prediction_method_ablation, scale=scale)
    print()
    print(format_table(
        ["prediction", "deadline satisfaction", "changes"],
        [
            [r.method, f"{100 * r.deadline_satisfaction:.1f}%", r.placement_changes]
            for r in rows
        ],
    ))
    by_name = {r.method: r for r in rows}
    assert abs(
        by_name["exact"].deadline_satisfaction
        - by_name["interpolate"].deadline_satisfaction
    ) < 0.15
    benchmark.extra_info["rows"] = [
        (r.method, round(r.deadline_satisfaction, 3), r.placement_changes)
        for r in rows
    ]
