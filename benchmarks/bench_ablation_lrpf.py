"""Ablation A5: the LRPF ordering alone versus the full controller.

The paper proposes lowest-relative-performance-first as its batch
ordering (§1) *inside* the utility-vector placement search.  This bench
runs the ordering as a plain greedy preemptive policy next to the full
APC on a loaded Experiment Two point.  Expectation: the standalone
ordering matches the APC's deadline satisfaction but reconfigures the
system vastly more — the evaluation machinery and churn gating, not the
ordering, provide the stability the paper credits APC with (Figure 4).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import format_table
from repro.experiments.experiment2 import run_experiment_two

LOADED_POINT = 100.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_lrpf_vs_apc(benchmark, scale):
    result = run_once(
        benchmark,
        run_experiment_two,
        scale=scale,
        interarrivals=(LOADED_POINT,),
        policies=("LRPF", "APC"),
    )
    lrpf = result.cell("LRPF", LOADED_POINT)
    apc = result.cell("APC", LOADED_POINT)
    print()
    print(format_table(
        ["policy", "deadline satisfaction", "placement changes"],
        [
            ["LRPF", f"{100 * lrpf.deadline_satisfaction:.1f}%", lrpf.placement_changes],
            ["APC", f"{100 * apc.deadline_satisfaction:.1f}%", apc.placement_changes],
        ],
    ))
    assert abs(lrpf.deadline_satisfaction - apc.deadline_satisfaction) < 0.15
    assert lrpf.placement_changes > apc.placement_changes, (
        "the bare ordering must churn more than the gated controller"
    )
    benchmark.extra_info["lrpf_changes"] = lrpf.placement_changes
    benchmark.extra_info["apc_changes"] = apc.placement_changes
