"""Figure 4: number of placement changes (§5.2).

Counts suspends + resumes + migrations per policy across the
inter-arrival sweep.  Checked shape:

* FCFS is non-preemptive: exactly zero changes everywhere;
* under load, EDF reconfigures considerably more than APC — the paper's
  headline: APC achieves its on-time rate "whilst still making few
  changes".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import format_table
from repro.experiments.experiment2 import run_experiment_two

SWEEP = (400.0, 200.0, 100.0)


@pytest.mark.benchmark(group="fig4")
def test_fig4_placement_changes(benchmark, scale):
    result = run_once(
        benchmark, run_experiment_two, scale=scale, interarrivals=SWEEP
    )

    print()
    print(format_table(
        ["inter-arrival(s)", "FCFS", "EDF", "APC"], result.changes_table()
    ))

    for ia in SWEEP:
        assert result.cell("FCFS", ia).placement_changes == 0

    # Aggregate over the loaded half of the sweep: EDF >> APC.
    loaded = [ia for ia in SWEEP if ia <= 200.0]
    edf_total = sum(result.cell("EDF", ia).placement_changes for ia in loaded)
    apc_total = sum(result.cell("APC", ia).placement_changes for ia in loaded)
    assert edf_total > apc_total, (
        f"EDF should reconfigure more than APC under load "
        f"(EDF={edf_total}, APC={apc_total})"
    )

    benchmark.extra_info["rows"] = result.changes_table()
    benchmark.extra_info["edf_total_loaded"] = edf_total
    benchmark.extra_info["apc_total_loaded"] = apc_total
