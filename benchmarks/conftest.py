"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series.  Scale is selected with
``REPRO_BENCH_SCALE`` (``tiny`` / ``small`` / ``half`` / ``paper``); the
default keeps the whole suite laptop-friendly while preserving per-node
load (see :mod:`repro.experiments.common`).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Scale, scale_from_env


@pytest.fixture(scope="session")
def scale() -> Scale:
    resolved = scale_from_env()
    print(f"\n[repro] benchmark scale: {resolved.name} "
          f"({resolved.nodes} nodes, {resolved.job_count} jobs)")
    return resolved


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are end-to-end simulations (seconds to minutes); statistical
    repetition buys nothing and multiplies runtime.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
