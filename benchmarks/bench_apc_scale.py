"""APC search scaling: naive versus incremental fast path.

Thin pytest wrapper around :func:`repro.experiments.benchmark.
bench_apc_scale` — the same ladder the ``repro bench`` CLI runs.  Times
``place()`` over rolling cycles of a saturated mixed-class workload at a
ladder of cluster sizes, asserts the fast path's decisions stay
byte-identical to the reference solver, and writes the schema'd report
to ``BENCH_apc.json``.

``REPRO_BENCH_QUICK=1`` shrinks the ladder to CI-smoke size.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import run_once
from repro.experiments.benchmark import (
    bench_apc_scale,
    format_bench_report,
    validate_bench_report,
    write_bench_report,
)


@pytest.mark.benchmark(group="apc-scale")
def test_apc_scale_naive_vs_incremental(benchmark, tmp_path):
    quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    report = run_once(benchmark, bench_apc_scale, quick=quick)
    print()
    print(format_bench_report(report))
    problems = validate_bench_report(report)
    assert not problems, problems
    # Identity is the hard requirement at every size; speed is reported.
    assert all(row["identical"] for row in report["results"])
    write_bench_report(report, str(tmp_path / "BENCH_apc.json"))
    benchmark.extra_info["speedups"] = {
        str(row["nodes"]): round(row["speedup_median"], 2)
        for row in report["results"]
    }
