"""Table 1 + Figure 1: the illustrative example (§4.3).

Regenerates the cycle-by-cycle decisions for scenarios S1 and S2 and
checks the paper's two headline decisions:

* S1, cycle 2: J2 is **not** started (the no-change tie);
* S2, cycle 2: J2 **is** started and the node's CPU is split ~evenly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.illustrative import render, run_illustrative_example


@pytest.mark.benchmark(group="fig1")
def test_fig1_illustrative_example(benchmark):
    results = run_once(benchmark, run_illustrative_example)
    print()
    print(render(results))

    s1, s2 = results["S1"], results["S2"]
    # Paper, Figure 1 / §4.3:
    assert s1.placed_at_cycle(1.0) == ["J1"], "S1 cycle 2 must keep J1 alone"
    assert s2.placed_at_cycle(1.0) == ["J1", "J2"], "S2 cycle 2 must share"
    # S2 splits the 1000 MHz node roughly in half (paper: 500/500).
    cycle2 = [t for t in s2.cycles if t.time == 1.0][0]
    assert cycle2.placements["J1"] == pytest.approx(500.0, rel=0.1)
    assert cycle2.placements["J2"] == pytest.approx(500.0, rel=0.1)
    # All jobs complete in both scenarios.
    assert set(s1.completions) == {"J1", "J2", "J3"}
    assert set(s2.completions) == {"J1", "J2", "J3"}

    benchmark.extra_info["s1_cycle2"] = s1.placed_at_cycle(1.0)
    benchmark.extra_info["s2_cycle2"] = s2.placed_at_cycle(1.0)
