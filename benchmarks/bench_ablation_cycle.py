"""Ablation A2: control-cycle length sweep (§3.1 motivates short cycles).

Runs the Experiment One workload under APC for several cycle lengths.
Expectation: deadline satisfaction stays high across moderate cycles
(identical jobs are forgiving) and zero churn is preserved, while
coarser cycles add dispatch latency (jobs wait longer in the queue
before their first placement).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.ablations import run_cycle_length_ablation
from repro.experiments.common import format_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_cycle_length(benchmark, scale):
    rows = run_once(benchmark, run_cycle_length_ablation, scale=scale)
    print()
    print(format_table(
        ["cycle T (s)", "deadline satisfaction", "changes", "decision s"],
        [
            [int(r.cycle_length), f"{100 * r.deadline_satisfaction:.1f}%",
             r.placement_changes, f"{r.mean_decision_seconds:.4f}"]
            for r in rows
        ],
    ))
    for r in rows:
        if r.cycle_length <= 1200.0:
            assert r.placement_changes == 0, "identical jobs: never reconfigure"
        else:
            # At T = 2400 s the one-cycle goal erosion of a queued job
            # (T / 47,520 s ≈ 0.0505) crosses the default preemption
            # penalty (0.05), so a handful of swaps can appear — the
            # churn gate is calibrated for cycles "of the order of
            # minutes" (§3.1), which is itself the ablation's finding.
            assert r.placement_changes < 0.2 * scale.job_count
    # The shortest cycle should do at least as well as the longest.
    assert rows[0].deadline_satisfaction >= rows[-1].deadline_satisfaction - 0.05
    benchmark.extra_info["rows"] = [
        (r.cycle_length, round(r.deadline_satisfaction, 3)) for r in rows
    ]
