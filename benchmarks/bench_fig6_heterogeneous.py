"""Figure 6: relative performance under heterogeneous workloads (§5.3).

Runs the three system configurations (APC dynamic sharing; static
TX-satisfied/LR partition; static TX-tight/LR partition) over the same
mixed workload and prints both workloads' relative-performance series.

Checked shape:

* dynamic sharing starts the transactional workload at its 0.66 plateau,
  pulls it down as batch pressure mounts, and equalizes the two
  workloads (smallest mean |TX − LR| gap of the three configurations);
* the TX-satisfied static partition pins TX at ~0.66 while the batch
  workload plunges;
* the TX-tight static partition holds TX consistently below the dynamic
  configuration's plateau without a clear batch advantage.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import run_once
from repro.experiments.experiment3 import (
    PAPER_TXN_MAX_UTILITY,
    run_experiment_three,
)


@pytest.mark.benchmark(group="fig6")
def test_fig6_relative_performance(benchmark, scale):
    result = run_once(benchmark, run_experiment_three, scale=scale)

    for key, cfg in result.configurations.items():
        print(f"\n{cfg.name}")
        print("time(s)    TX u      LR u")
        batch = dict(cfg.batch_utility_series)
        series = cfg.txn_utility_series
        step = max(1, len(series) // 14)
        for t, u in series[::step]:
            lr = batch.get(t, float("nan"))
            print(f"{t:9.0f}  {u:7.3f}  {lr:7.3f}")
        print(f"mean |TX-LR| gap: {cfg.mean_abs_utility_gap():.3f}  "
              f"batch deadline satisfaction: {cfg.deadline_satisfaction:.2f}")

    apc = result.configurations["APC"]
    tx9 = result.configurations["TX9"]
    tx6 = result.configurations["TX6"]

    # Dynamic sharing reaches the plateau when uncontended...
    assert apc.max_txn_utility() == pytest.approx(PAPER_TXN_MAX_UTILITY, abs=0.02)
    # ...and yields CPU under contention (TX drops measurably below the
    # plateau; how far depends on the scale's memory-slot/CPU ratio — at
    # paper scale the 75 job slots cap the batch workload's absorbable
    # CPU, leaving TX with its residual ~0.59, while smaller scales push
    # TX much lower).
    assert apc.min_txn_utility() < PAPER_TXN_MAX_UTILITY - 0.05
    # The satisfied static partition pins TX at the plateau throughout.
    assert tx9.min_txn_utility() == pytest.approx(PAPER_TXN_MAX_UTILITY, abs=0.02)
    # ...while its batch workload does far worse than under dynamic sharing.
    assert tx9.deadline_satisfaction < apc.deadline_satisfaction - 0.1
    # The tight static partition holds TX consistently below the plateau.
    assert tx6.max_txn_utility() < PAPER_TXN_MAX_UTILITY - 0.1
    # Dynamic sharing equalizes: smallest TX/LR gap of the three.
    gaps = {k: c.mean_abs_utility_gap() for k, c in result.configurations.items()}
    assert all(not math.isnan(g) for g in gaps.values())
    assert gaps["APC"] == min(gaps.values())

    benchmark.extra_info["gaps"] = {k: round(v, 3) for k, v in gaps.items()}
    benchmark.extra_info["deadline_satisfaction"] = {
        k: round(c.deadline_satisfaction, 3)
        for k, c in result.configurations.items()
    }
